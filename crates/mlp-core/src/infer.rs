//! Warm-start fold-in inference for unseen users.
//!
//! The serving question: the model was trained yesterday; a user it has
//! never seen shows up with a handful of observations (who they follow,
//! which venues they tweet). Where do they live? Re-running full-corpus
//! Gibbs per request is a non-starter; instead a [`FoldInEngine`] runs a
//! *short per-user Gibbs chain* against a frozen
//! [`PosteriorSnapshot`]:
//!
//! * the unseen user gets a candidate list built the same way training
//!   candidacy is (partner homes + venue resolutions + popular fallback);
//! * their edge partners are anchored at the snapshot's MAP homes, and
//!   partner profile terms are evaluated from the frozen mean counts `ϕ̄`;
//! * venue terms are evaluated from the frozen `φ` — the one fold-in
//!   approximation is that the new user's own venue tokens are *not*
//!   folded into `φ` (a single user's tokens are a vanishing perturbation
//!   of the trained posterior, and keeping `φ` frozen is what makes
//!   lock-free batching possible);
//! * the conditional weights are the exact training kernels
//!   ([`crate::kernel`], Eqs. 5–9) — the math is single-sourced, evaluated
//!   through a [`ProfileView`]/[`CountView`] pair that splices the one
//!   live user into the frozen posterior.
//!
//! Batching: each user's chain is independent, so
//! [`FoldInEngine::fold_in_batch`] fans a request slice across
//! `std::thread::scope` workers that share the read-only snapshot — no
//! locks, no count merging, nothing to reconcile. Every chain's RNG
//! stream is derived from the request *index*, not the worker, so a
//! batched run is bit-identical to the sequential one (pinned by the
//! warm-start determinism suite).

use crate::config::MlpConfig;
use crate::kernel::{self, CountView, Endpoint, ProfileView, SamplerView};
use crate::parallel::chunk_ranges;
use crate::random_models::RandomModels;
use crate::snapshot::{PosteriorSnapshot, UserPosterior};
use mlp_gazetteer::{CityId, Gazetteer, VenueId};
use mlp_sampling::{sample_categorical, Pcg64, SplitMix64};
use mlp_social::{Dataset, UserId};

/// Errors raised by fold-in inference.
///
/// Every condition a serving request can trigger — mismatched geography,
/// unknown ids, or a structurally inconsistent snapshot — surfaces here as
/// a typed error. The serving path never panics on request content: the
/// only `panic!`s left behind the public API guard *internal math
/// invariants* (`γ > 0` making categorical weights positive), which no
/// input reachable through this module can violate.
#[derive(Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FoldInError {
    /// The snapshot was trained against a different gazetteer — shape
    /// (`cities`/`venues`) or content (`fingerprint`) differs.
    GazetteerMismatch {
        /// `(cities, venues, content fingerprint)` recorded in the snapshot.
        snapshot: (u32, u32, u64),
        /// The same triple for the gazetteer handed to the engine.
        gazetteer: (u32, u32, u64),
    },
    /// An observation referenced a user the snapshot does not contain.
    UnknownUser(UserId),
    /// An observation referenced a venue outside the vocabulary.
    UnknownVenue(VenueId),
    /// The snapshot itself is structurally inconsistent: the recorded MAP
    /// home of `user` is not in their candidate list, so the user cannot
    /// anchor a fold-in chain. Decoded artifacts are validated against
    /// this at thaw time; an in-memory snapshot assembled by hand can
    /// still violate it, and serving must reject — not crash on — it.
    InconsistentSnapshot(UserId),
    /// The engine could not build a non-empty candidate list (an empty
    /// gazetteer leaves even the popular-city fallback empty).
    NoCandidates,
}

impl std::fmt::Display for FoldInError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FoldInError::GazetteerMismatch { snapshot, gazetteer } => write!(
                f,
                "snapshot trained on {}x{} (cities x venues, content {:#x}) but gazetteer is \
                 {}x{} (content {:#x})",
                snapshot.0, snapshot.1, snapshot.2, gazetteer.0, gazetteer.1, gazetteer.2
            ),
            FoldInError::UnknownUser(u) => write!(f, "observation references unknown user {u}"),
            FoldInError::UnknownVenue(v) => {
                write!(f, "observation references unknown venue {}", v.0)
            }
            FoldInError::InconsistentSnapshot(u) => {
                write!(f, "snapshot home of user {u} is not one of their candidates")
            }
            FoldInError::NoCandidates => write!(f, "no candidate cities available for fold-in"),
        }
    }
}

impl std::error::Error for FoldInError {}

/// The observations an unseen user arrives with.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NewUserObservations {
    /// Training users this user follows or is followed by (the edge
    /// selector is symmetric in both endpoints' profiles, so direction
    /// does not matter here).
    pub neighbors: Vec<UserId>,
    /// Venues this user mentioned, one entry per mention token.
    pub mentions: Vec<VenueId>,
}

impl NewUserObservations {
    /// Collects user `u`'s observations out of a dataset — the convenience
    /// path for evaluation, where "unseen" users live in a full dataset
    /// whose other users were used for training. For many users at once,
    /// [`Self::batch_from_dataset`] does the same in one corpus pass.
    pub fn from_dataset(dataset: &Dataset, u: UserId) -> Self {
        Self::batch_from_dataset(dataset, std::slice::from_ref(&u)).pop().expect("one user in")
    }

    /// [`Self::from_dataset`] for a whole request batch in a single pass
    /// over the corpus (`O(S + K + U)` instead of `O(U · (S + K))`).
    /// Output order matches `users`; a user appearing twice gets two
    /// copies of their observations.
    pub fn batch_from_dataset(dataset: &Dataset, users: &[UserId]) -> Vec<Self> {
        let mut slot = vec![usize::MAX; dataset.num_users()];
        // First slot wins so duplicates can be copied afterwards. Users
        // outside the dataset's id range simply collect nothing.
        for (i, &u) in users.iter().enumerate().rev() {
            if let Some(s) = slot.get_mut(u.index()) {
                *s = i;
            }
        }
        let mut out: Vec<Self> = vec![Self::default(); users.len()];
        let lookup = |slot: &[usize], u: UserId| -> Option<usize> {
            slot.get(u.index()).copied().filter(|&i| i != usize::MAX)
        };
        for e in &dataset.edges {
            if let Some(i) = lookup(&slot, e.follower) {
                out[i].neighbors.push(e.friend);
            }
            if let Some(i) = lookup(&slot, e.friend) {
                out[i].neighbors.push(e.follower);
            }
        }
        for m in &dataset.mentions {
            if let Some(i) = lookup(&slot, m.user) {
                out[i].mentions.push(m.venue);
            }
        }
        for (i, &u) in users.iter().enumerate() {
            match lookup(&slot, u) {
                Some(first) if first != i => out[i] = out[first].clone(),
                _ => {}
            }
        }
        out
    }
}

/// Fold-in chain configuration.
#[derive(Debug, Clone)]
pub struct FoldInConfig {
    /// Sweeps of the per-user chain. The domain is a handful of candidate
    /// cities, so short chains mix quickly.
    pub sweeps: usize,
    /// Sweeps discarded before `θ̂` accumulation.
    pub burn_in: usize,
    /// RNG seed; combined with each request's index in the batch.
    pub seed: u64,
    /// Candidate fallback size for users with no usable signal.
    pub fallback_popular_k: usize,
    /// Worker threads for [`FoldInEngine::fold_in_batch`]. Results are
    /// bit-identical for every value.
    pub threads: usize,
}

impl Default for FoldInConfig {
    fn default() -> Self {
        Self { sweeps: 20, burn_in: 8, seed: 7, fallback_popular_k: 10, threads: 1 }
    }
}

impl FoldInConfig {
    /// Validates the configuration; returns the first violation.
    ///
    /// [`FoldInEngine`] itself stays permissive for backward compatibility
    /// (`threads: 0` runs sequentially, `sweeps: 0` clamps to one, a
    /// burn-in swallowing every sweep falls back to the final sample) —
    /// this is the strict check the [`crate::engine::EngineBuilder`] build paths
    /// enforces so a serving deployment cannot run degenerate chains.
    pub fn validate(&self) -> Result<(), crate::config::ConfigError> {
        use crate::config::ConfigError;
        if self.sweeps == 0 {
            return Err(ConfigError::Zero("sweeps"));
        }
        if self.burn_in >= self.sweeps {
            return Err(ConfigError::BurnInTooLarge {
                burn_in: self.burn_in,
                chain_len: self.sweeps,
            });
        }
        if self.threads == 0 {
            return Err(ConfigError::Zero("threads"));
        }
        if self.fallback_popular_k == 0 {
            return Err(ConfigError::Zero("fallback_popular_k"));
        }
        Ok(())
    }
}

/// An unseen user's inferred location profile.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldInProfile {
    /// `θ̂` over the user's candidates, `(city, probability)` sorted by
    /// descending probability (ties broken by city id, as in training).
    pub profile: Vec<(CityId, f64)>,
}

impl FoldInProfile {
    /// Predicted home location (argmax of `θ̂`).
    pub fn home(&self) -> CityId {
        self.profile[0].0
    }

    /// The top-`k` locations.
    pub fn top_k(&self, k: usize) -> Vec<CityId> {
        self.profile.iter().take(k).map(|&(c, _)| c).collect()
    }
}

/// One fold-in chain's full output: the serving profile plus everything an
/// online commit needs to append the user to the posterior
/// ([`crate::online::OnlineUpdater`]).
///
/// The profile is bit-identical to what [`FoldInEngine::fold_in`] returns —
/// the record only *additionally* keeps the chain's mean counts in
/// arena-ready form and the expected venue-count contributions of the
/// user's location-based mentions.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldInRecord {
    /// The serving answer (`θ̂` sorted by descending probability).
    pub profile: FoldInProfile,
    /// The user's posterior row, ready to append to a
    /// [`crate::snapshot::UserArena`].
    pub posterior: UserPosterior,
    /// Expected `φ` increments `(city, venue, weight)` from the user's
    /// location-based mentions, sorted by `(city, venue)` with unique
    /// keys. Weights are post-burn-in expectations, so they are
    /// fractional and non-negative.
    pub venue_deltas: Vec<(CityId, VenueId, f64)>,
}

/// FNV-1a over the bit patterns of a prediction set — the serving-path
/// fingerprint the determinism suite (and the CI smoke job) pins.
pub fn determinism_hash(profiles: &[FoldInProfile]) -> u64 {
    determinism_hash_rankings(profiles.iter().map(|p| p.profile.as_slice()))
}

/// The hash behind [`determinism_hash`], generic over how the rankings are
/// stored so [`crate::engine::response_determinism_hash`] produces the
/// *same* fingerprint for the same predictions.
pub(crate) fn determinism_hash_rankings<'s>(
    rankings: impl Iterator<Item = &'s [(CityId, f64)]>,
) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for ranked in rankings {
        eat(ranked.len() as u64);
        for &(c, w) in ranked {
            eat(c.0 as u64);
            eat(w.to_bits());
        }
    }
    h
}

/// The profile view the kernel evaluates during fold-in: training users
/// resolve to the frozen snapshot, the one transient user to their local
/// candidate list.
struct FoldInProfiles<'a> {
    snap: &'a PosteriorSnapshot,
    new_user: UserId,
    candidates: Vec<CityId>,
    gammas: Vec<f64>,
    gamma_total: f64,
}

impl ProfileView for FoldInProfiles<'_> {
    #[inline]
    fn candidates(&self, u: UserId) -> &[CityId] {
        if u == self.new_user {
            &self.candidates
        } else {
            self.snap.users.candidates_of(u)
        }
    }

    #[inline]
    fn gammas(&self, u: UserId) -> &[f64] {
        if u == self.new_user {
            &self.gammas
        } else {
            self.snap.users.gammas_of(u)
        }
    }

    #[inline]
    fn gamma_total(&self, u: UserId) -> f64 {
        if u == self.new_user {
            self.gamma_total
        } else {
            self.snap.users.gamma_total(u)
        }
    }
}

/// The count view: frozen `ϕ̄`/`φ` for everything trained, live `ϕ` for
/// the one user being folded in. Exclude-current is handled the
/// sequential-driver way — the chain decrements the live counts before
/// evaluating conditionals — so the trained counts are never touched.
struct FoldInCounts<'a> {
    snap: &'a PosteriorSnapshot,
    new_user: UserId,
    counts: Vec<f64>,
    total: f64,
}

impl CountView for FoldInCounts<'_> {
    #[inline]
    fn user_count(&self, u: UserId, c: usize) -> f64 {
        if u == self.new_user {
            self.counts[c]
        } else {
            self.snap.users.mean_counts_of(u)[c]
        }
    }

    #[inline]
    fn user_total(&self, u: UserId) -> f64 {
        if u == self.new_user {
            self.total
        } else {
            self.snap.users.mean_total(u)
        }
    }

    #[inline]
    fn venue_count(&self, l: CityId, v: VenueId) -> f64 {
        self.snap.venue_count(l, v)
    }

    #[inline]
    fn city_total(&self, l: CityId) -> f64 {
        self.snap.venues.city_total(l)
    }
}

/// Everything [`FoldInEngine::new`] derives from a snapshot besides the
/// frozen counts themselves: the thawed noise models, the reassembled
/// hyper-parameters, and the popular-city fallback list. None of it
/// changes when delta commits append users, so
/// [`crate::engine::ServingEngine`] derives it once at build time and
/// rebuilds per-epoch engines from clones through
/// [`FoldInEngine::from_validated_parts`] — skipping the per-call
/// gazetteer-fingerprint walk.
#[derive(Debug, Clone)]
pub(crate) struct DerivedParts {
    /// Thawed noise models (exact training-time probabilities).
    pub(crate) random: RandomModels,
    /// Hyper-parameters reassembled for the kernel's `SamplerView`.
    pub(crate) mlp_config: MlpConfig,
    /// Fallback candidates for signal-free users: most populous cities.
    pub(crate) popular: Vec<CityId>,
}

impl DerivedParts {
    pub(crate) fn derive(
        snap: &PosteriorSnapshot,
        gaz: &Gazetteer,
        fallback_popular_k: usize,
    ) -> Self {
        let mut by_pop: Vec<CityId> = (0..gaz.num_cities() as u32).map(CityId).collect();
        by_pop.sort_by_key(|&c| std::cmp::Reverse(gaz.city(c).population));
        by_pop.truncate(fallback_popular_k.max(1));
        Self {
            random: RandomModels::from_frozen(snap.follow_prob, snap.venue_probs.clone()),
            mlp_config: MlpConfig {
                variant: snap.variant,
                count_noisy_assignments: snap.count_noisy_assignments,
                tau: snap.tau,
                delta: snap.delta,
                rho_f: snap.rho_f,
                rho_t: snap.rho_t,
                power_law: snap.power_law,
                fit_power_law_from_data: false,
                ..Default::default()
            },
            popular: by_pop,
        }
    }
}

/// The fold-in engine: a frozen snapshot plus everything derived from it
/// once, shared read-only by every chain (and every batch worker).
pub struct FoldInEngine<'a> {
    snap: &'a PosteriorSnapshot,
    gaz: &'a Gazetteer,
    config: FoldInConfig,
    /// See [`DerivedParts`].
    parts: DerivedParts,
}

impl<'a> FoldInEngine<'a> {
    /// Binds a snapshot to the gazetteer it was trained against.
    pub fn new(
        snap: &'a PosteriorSnapshot,
        gaz: &'a Gazetteer,
        config: FoldInConfig,
    ) -> Result<Self, FoldInError> {
        let gaz_print = crate::snapshot::gazetteer_fingerprint(gaz);
        if snap.num_cities as usize != gaz.num_cities()
            || snap.num_venues as usize != gaz.num_venues()
            || snap.gaz_fingerprint != gaz_print
        {
            return Err(FoldInError::GazetteerMismatch {
                snapshot: (snap.num_cities, snap.num_venues, snap.gaz_fingerprint),
                gazetteer: (gaz.num_cities() as u32, gaz.num_venues() as u32, gaz_print),
            });
        }
        let parts = DerivedParts::derive(snap, gaz, config.fallback_popular_k);
        Ok(Self { snap, gaz, config, parts })
    }

    /// The fast path for [`crate::engine::ServingEngine`]: rebinds an
    /// engine to a (possibly delta-refreshed) snapshot from parts the
    /// caller derived when it validated the snapshot/gazetteer pairing —
    /// no fingerprint walk, no re-derivation. Callers must guarantee
    /// `parts` came from [`DerivedParts::derive`] over the same gazetteer
    /// and hyper-parameters (delta commits never change either).
    pub(crate) fn from_validated_parts(
        snap: &'a PosteriorSnapshot,
        gaz: &'a Gazetteer,
        config: FoldInConfig,
        parts: DerivedParts,
    ) -> Self {
        Self { snap, gaz, config, parts }
    }

    /// The engine's fold-in configuration.
    pub fn config(&self) -> &FoldInConfig {
        &self.config
    }

    /// Folds in a single unseen user (RNG stream of batch index 0).
    pub fn fold_in(&self, obs: &NewUserObservations) -> Result<FoldInProfile, FoldInError> {
        self.fold_in_indexed(0, obs, false).map(|r| r.profile)
    }

    /// Folds in a batch of unseen users. With `threads > 1` the batch is
    /// chunked across scoped workers sharing the read-only snapshot;
    /// results are bit-identical to the sequential run because every
    /// chain's RNG stream depends only on its index in `batch`.
    ///
    /// `threads: 0` behaves as `1` (exact sequential), and a batch shorter
    /// than the thread count simply leaves the surplus workers idle.
    pub fn fold_in_batch(
        &self,
        batch: &[NewUserObservations],
    ) -> Result<Vec<FoldInProfile>, FoldInError> {
        self.fold_in_batch_by(batch.len(), |i| &batch[i])
    }

    /// [`Self::fold_in_batch`] fetching each request's observations by
    /// index — the crate-internal bridge for callers whose batches wrap
    /// observations in a richer request type
    /// ([`crate::engine::ServingEngine::profile_batch`]), avoiding an
    /// intermediate owned copy of every neighbor/mention list.
    pub(crate) fn fold_in_batch_by<'b>(
        &self,
        len: usize,
        get: impl Fn(usize) -> &'b NewUserObservations + Sync,
    ) -> Result<Vec<FoldInProfile>, FoldInError> {
        self.fold_in_each(len, |i| self.fold_in_indexed(i, get(i), false).map(|r| r.profile))
    }

    /// [`Self::fold_in_batch_by`] with every chain pinned to the RNG
    /// stream of batch index 0: each answer is bit-identical to a
    /// standalone [`Self::fold_in`] call on that request alone. This is
    /// the coalescing contract ([`crate::coalesce`]) — grouping
    /// concurrent single-user requests into one wave must not change any
    /// answer, no matter which requests happen to share the wave.
    pub(crate) fn fold_in_singletons_by<'b>(
        &self,
        len: usize,
        get: impl Fn(usize) -> &'b NewUserObservations + Sync,
    ) -> Result<Vec<FoldInProfile>, FoldInError> {
        self.fold_in_each(len, |i| self.fold_in_indexed(0, get(i), false).map(|r| r.profile))
    }

    /// [`Self::fold_in_batch`] returning full [`FoldInRecord`]s — the
    /// commit-ready form the online updater consumes. Profiles are
    /// bit-identical to [`Self::fold_in_batch`] on the same batch (the
    /// extra bookkeeping draws no randomness).
    pub fn fold_in_records(
        &self,
        batch: &[NewUserObservations],
    ) -> Result<Vec<FoldInRecord>, FoldInError> {
        self.fold_in_each(batch.len(), |i| self.fold_in_indexed(i, &batch[i], true))
    }

    /// Shared batch scheduler: chunks request indices `0..len` across
    /// scoped workers (or runs inline for `threads <= 1`), preserving
    /// request order.
    fn fold_in_each<T: Send>(
        &self,
        len: usize,
        run: impl Fn(usize) -> Result<T, FoldInError> + Sync,
    ) -> Result<Vec<T>, FoldInError> {
        let threads = self.config.threads.max(1);
        // Single-request batches never pay the scoped-spawn setup, even
        // with a multi-threaded configuration: one chain cannot be split,
        // and inline execution is bit-identical (streams depend only on
        // the request index, not on which thread runs the chain).
        if threads == 1 || len <= 1 {
            return (0..len).map(&run).collect();
        }
        let run = &run;
        let chunks = chunk_ranges(len, threads);
        let outs: Vec<Result<Vec<T>, FoldInError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|range| scope.spawn(move || range.map(run).collect()))
                .collect();
            handles.into_iter().map(|h| h.join().expect("fold-in worker")).collect()
        });
        let mut merged = Vec::with_capacity(len);
        for out in outs {
            merged.extend(out?);
        }
        Ok(merged)
    }

    /// One user's complete fold-in chain. `index` is the user's position
    /// in the request batch; it seeds the chain's RNG stream.
    /// `collect_venues` additionally accumulates the expected venue-count
    /// contributions (pure bookkeeping — no extra RNG draws, so profiles
    /// are identical either way).
    fn fold_in_indexed(
        &self,
        index: usize,
        obs: &NewUserObservations,
        collect_venues: bool,
    ) -> Result<FoldInRecord, FoldInError> {
        let snap = self.snap;
        let uses_following = snap.variant.uses_following();
        let uses_tweeting = snap.variant.uses_tweeting();

        // Validate + gather the observations the variant consumes.
        for &p in &obs.neighbors {
            if p.index() >= snap.users.num_users() {
                return Err(FoldInError::UnknownUser(p));
            }
        }
        for &v in &obs.mentions {
            if v.index() >= snap.num_venues as usize {
                return Err(FoldInError::UnknownVenue(v));
            }
        }
        let neighbors: &[UserId] = if uses_following { &obs.neighbors } else { &[] };
        let mentions: &[VenueId] = if uses_tweeting { &obs.mentions } else { &[] };

        // Candidate list, the training recipe transplanted: partner homes
        // + venue resolutions, popular-city fallback when signal-free.
        let mut candidates: Vec<CityId> = neighbors.iter().map(|&p| snap.users.home(p)).collect();
        for &v in mentions {
            candidates.extend(self.gaz.resolve_venue(v).iter().copied());
        }
        candidates.sort_unstable();
        candidates.dedup();
        if candidates.is_empty() {
            candidates = self.parts.popular.clone();
            candidates.sort_unstable();
        }
        if candidates.is_empty() {
            return Err(FoldInError::NoCandidates);
        }

        let gammas = vec![snap.tau; candidates.len()];
        let gamma_total = snap.tau * candidates.len() as f64;
        let new_user = UserId(snap.users.num_users() as u32);

        // Partner anchors, fixed for the whole chain. Thawed artifacts are
        // validated at decode time, but a hand-assembled snapshot can
        // still record a home outside the candidate list — a typed error,
        // never a crash, on the serving path.
        let anchors: Vec<Endpoint> = neighbors
            .iter()
            .map(|&p| {
                let up = snap.users.user(p);
                let pos = up
                    .candidates
                    .binary_search(&up.home)
                    .map_err(|_| FoldInError::InconsistentSnapshot(p))?;
                Ok(Endpoint { user: p, pos, city: up.home })
            })
            .collect::<Result<_, FoldInError>>()?;

        let profiles = FoldInProfiles { snap, new_user, candidates, gammas, gamma_total };
        let view: SamplerView<'_, FoldInProfiles<'_>> = SamplerView {
            gaz: self.gaz,
            candidacy: &profiles,
            random: &self.parts.random,
            config: &self.parts.mlp_config,
            power_law: snap.power_law,
        };
        let mut counts = FoldInCounts {
            snap,
            new_user,
            counts: vec![0.0; profiles.candidates.len()],
            total: 0.0,
        };
        let count_noisy = snap.count_noisy_assignments;

        let mut rng =
            Pcg64::new(SplitMix64::derive(self.config.seed, 0x0F1D_0000_0000_0000 ^ index as u64));

        // Init at the conditional mode (the training initialisation
        // transplanted): the candidate maximising aggregate distance
        // log-likelihood to the anchors plus a venue-resolution bonus.
        let mode = {
            let mut scores = vec![0.0f64; profiles.candidates.len()];
            let mut has_signal = false;
            for a in &anchors {
                has_signal = true;
                for (c, &city) in profiles.candidates.iter().enumerate() {
                    scores[c] += snap.power_law.kernel(self.gaz.distance(city, a.city)).ln();
                }
            }
            for &v in mentions {
                for &city in self.gaz.resolve_venue(v) {
                    if let Ok(c) = profiles.candidates.binary_search(&city) {
                        has_signal = true;
                        scores[c] -= snap.power_law.kernel(1.0).ln() - 0.5;
                    }
                }
            }
            has_signal.then(|| {
                scores
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(c, _)| c)
                    .expect("non-empty candidates")
            })
        };
        let pos = |rng: &mut Pcg64| -> usize {
            match mode {
                Some(m) if rng.bernoulli(0.9) => m,
                _ => rng.next_bounded(profiles.candidates.len()),
            }
        };

        let mut mu: Vec<bool> = Vec::with_capacity(anchors.len());
        let mut x: Vec<usize> = Vec::with_capacity(anchors.len());
        for _ in &anchors {
            mu.push(rng.bernoulli(snap.rho_f));
            x.push(pos(&mut rng));
        }
        let mut nu: Vec<bool> = Vec::with_capacity(mentions.len());
        let mut z: Vec<usize> = Vec::with_capacity(mentions.len());
        for _ in mentions {
            nu.push(rng.bernoulli(snap.rho_t));
            z.push(pos(&mut rng));
        }
        for (s, _) in anchors.iter().enumerate() {
            if !mu[s] || count_noisy {
                counts.counts[x[s]] += 1.0;
                counts.total += 1.0;
            }
        }
        for (k, _) in mentions.iter().enumerate() {
            if !nu[k] || count_noisy {
                counts.counts[z[k]] += 1.0;
                counts.total += 1.0;
            }
        }

        // The chain. Venue tokens stay out of φ (see module docs), so
        // mention exclusion only touches the live ϕ. When collecting for
        // an online commit, `venue_acc[k * C + c]` additionally counts the
        // post-burn-in sweeps where mention `k` sat location-based at
        // candidate `c`.
        let ncand = profiles.candidates.len();
        let mut acc = vec![0.0f64; ncand];
        let mut venue_acc =
            if collect_venues { vec![0.0f64; mentions.len() * ncand] } else { Vec::new() };
        let mut acc_sweeps = 0u32;
        let mut buf: Vec<f64> = Vec::new();
        for sweep in 0..self.config.sweeps.max(1) {
            for (s, anchor) in anchors.iter().enumerate() {
                let (old_mu, old_x) = (mu[s], x[s]);
                if !old_mu || count_noisy {
                    counts.counts[old_x] -= 1.0;
                    counts.total -= 1.0;
                }
                let me = Endpoint { user: new_user, pos: old_x, city: profiles.candidates[old_x] };
                let (w_based, w_noisy) = kernel::edge_selector_weights(&view, &counts, me, *anchor);
                let new_mu = rng.next_f64() * (w_based + w_noisy) < w_noisy;
                kernel::edge_position_weights(
                    &view,
                    &counts,
                    new_user,
                    (!new_mu).then_some(anchor.city),
                    &mut buf,
                );
                let new_x = sample_categorical(&mut rng, &buf)
                    .expect("fold-in x weights are positive (γ > 0)");
                if !new_mu || count_noisy {
                    counts.counts[new_x] += 1.0;
                    counts.total += 1.0;
                }
                mu[s] = new_mu;
                x[s] = new_x;
            }
            for (k, &v) in mentions.iter().enumerate() {
                let (old_nu, old_z) = (nu[k], z[k]);
                if !old_nu || count_noisy {
                    counts.counts[old_z] -= 1.0;
                    counts.total -= 1.0;
                }
                let old_city = profiles.candidates[old_z];
                let (w_based, w_noisy) =
                    kernel::mention_selector_weights(&view, &counts, new_user, old_z, old_city, v);
                let new_nu = rng.next_f64() * (w_based + w_noisy) < w_noisy;
                kernel::mention_position_weights(
                    &view,
                    &counts,
                    new_user,
                    (!new_nu).then_some(v),
                    &mut buf,
                );
                let new_z = sample_categorical(&mut rng, &buf)
                    .expect("fold-in z weights are positive (γ > 0)");
                if !new_nu || count_noisy {
                    counts.counts[new_z] += 1.0;
                    counts.total += 1.0;
                }
                nu[k] = new_nu;
                z[k] = new_z;
            }
            if sweep >= self.config.burn_in {
                for (a, &c) in acc.iter_mut().zip(&counts.counts) {
                    *a += c;
                }
                if collect_venues {
                    for (k, _) in mentions.iter().enumerate() {
                        if !nu[k] {
                            venue_acc[k * ncand + z[k]] += 1.0;
                        }
                    }
                }
                acc_sweeps += 1;
            }
        }

        // θ̂ per Eq. 10 over the accumulated means (falling back to the
        // final sample when burn_in swallowed every sweep).
        let mean: Vec<f64> = (0..ncand)
            .map(|c| if acc_sweeps == 0 { counts.counts[c] } else { acc[c] / acc_sweeps as f64 })
            .collect();
        let mean_total: f64 = mean.iter().sum();
        let total = mean_total + profiles.gamma_total;
        let mut profile: Vec<(CityId, f64)> = profiles
            .candidates
            .iter()
            .enumerate()
            .map(|(c, &city)| (city, (mean[c] + profiles.gammas[c]) / total))
            .collect();
        profile.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

        // Expected φ contributions of the location-based mentions, merged
        // over mentions of the same venue: sorted-unique (city, venue)
        // keys, ready for an index-wise delta merge at commit time.
        let venue_deltas = if collect_venues {
            let mut raw: Vec<(CityId, VenueId, f64)> = Vec::new();
            if acc_sweeps == 0 {
                for (k, &v) in mentions.iter().enumerate() {
                    if !nu[k] {
                        raw.push((profiles.candidates[z[k]], v, 1.0));
                    }
                }
            } else {
                for (k, &v) in mentions.iter().enumerate() {
                    for (c, &city) in profiles.candidates.iter().enumerate() {
                        let w = venue_acc[k * ncand + c];
                        if w > 0.0 {
                            raw.push((city, v, w / acc_sweeps as f64));
                        }
                    }
                }
            }
            raw.sort_unstable_by_key(|&(l, v, _)| (l, v));
            let mut merged: Vec<(CityId, VenueId, f64)> = Vec::with_capacity(raw.len());
            for (l, v, w) in raw {
                match merged.last_mut() {
                    Some(last) if last.0 == l && last.1 == v => last.2 += w,
                    _ => merged.push((l, v, w)),
                }
            }
            merged
        } else {
            Vec::new()
        };

        let home = profile[0].0;
        let FoldInProfiles { candidates, gammas, gamma_total, .. } = profiles;
        Ok(FoldInRecord {
            profile: FoldInProfile { profile },
            posterior: UserPosterior {
                candidates,
                gammas,
                mean_counts: mean,
                mean_total,
                gamma_total,
                home,
            },
            venue_deltas,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidacy::Candidacy;
    use crate::sampler::GibbsSampler;
    use mlp_social::{Adjacency, GeneratedData, Generator, GeneratorConfig};

    fn train(users: usize, seed: u64) -> (Gazetteer, GeneratedData, PosteriorSnapshot) {
        let gaz = Gazetteer::us_cities();
        let data =
            Generator::new(&gaz, GeneratorConfig { num_users: users, seed, ..Default::default() })
                .generate();
        let config = MlpConfig { seed, ..Default::default() };
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        for _ in 0..8 {
            sampler.sweep();
            sampler.state.accumulate();
        }
        let snap = PosteriorSnapshot::freeze(&sampler);
        (gaz, data, snap)
    }

    #[test]
    fn neighbors_in_one_city_pull_the_new_user_there() {
        let (gaz, data, snap) = train(150, 101);
        // Pick a labeled training user and pretend a new user follows them
        // (and two of their labeled neighbors' homes resolve nearby).
        let labeled: Vec<UserId> = data.dataset.labeled_users().collect();
        let anchor = labeled[0];
        let obs = NewUserObservations { neighbors: vec![anchor, anchor, anchor], mentions: vec![] };
        let engine = FoldInEngine::new(&snap, &gaz, FoldInConfig::default()).unwrap();
        let profile = engine.fold_in(&obs).unwrap();
        let anchor_home = snap.users.user(anchor).home;
        assert!(
            gaz.distance(profile.home(), anchor_home) <= 100.0,
            "fold-in home {} should be near the only anchor {}",
            gaz.city(profile.home()).full_name(),
            gaz.city(anchor_home).full_name()
        );
        // The profile is a distribution.
        let sum: f64 = profile.profile.iter().map(|&(_, p)| p).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn signal_free_user_falls_back_to_popular_cities() {
        let (gaz, _, snap) = train(60, 103);
        let engine = FoldInEngine::new(&snap, &gaz, FoldInConfig::default()).unwrap();
        let profile = engine.fold_in(&NewUserObservations::default()).unwrap();
        assert_eq!(profile.profile.len(), engine.config().fallback_popular_k);
    }

    #[test]
    fn batched_is_bit_identical_to_sequential() {
        let (gaz, data, snap) = train(200, 107);
        let batch: Vec<NewUserObservations> =
            (0..40).map(|u| NewUserObservations::from_dataset(&data.dataset, UserId(u))).collect();
        let seq_engine =
            FoldInEngine::new(&snap, &gaz, FoldInConfig { threads: 1, ..Default::default() })
                .unwrap();
        let par_engine =
            FoldInEngine::new(&snap, &gaz, FoldInConfig { threads: 4, ..Default::default() })
                .unwrap();
        let seq = seq_engine.fold_in_batch(&batch).unwrap();
        let par = par_engine.fold_in_batch(&batch).unwrap();
        assert_eq!(seq, par);
        assert_eq!(determinism_hash(&seq), determinism_hash(&par));
    }

    #[test]
    fn single_request_fast_path_is_bit_identical_to_spawned() {
        // A one-request batch takes the inline no-spawn path even with
        // `threads: 4`; its answer must stay bit-identical to the same
        // request served as the head of a spawned multi-request batch
        // (streams depend only on batch index, never on the executing
        // thread).
        let (gaz, data, snap) = train(120, 111);
        let batch: Vec<NewUserObservations> =
            (0..8).map(|u| NewUserObservations::from_dataset(&data.dataset, UserId(u))).collect();
        let engine =
            FoldInEngine::new(&snap, &gaz, FoldInConfig { threads: 4, ..Default::default() })
                .unwrap();
        let spawned = engine.fold_in_batch(&batch).unwrap();
        let inline = engine.fold_in_batch(&batch[..1]).unwrap();
        assert_eq!(inline[0], spawned[0]);
        // And the single-request convenience rides the same fast path.
        assert_eq!(engine.fold_in(&batch[0]).unwrap(), spawned[0]);
    }

    #[test]
    fn unknown_references_fail_loudly() {
        let (gaz, _, snap) = train(50, 109);
        let engine = FoldInEngine::new(&snap, &gaz, FoldInConfig::default()).unwrap();
        let bad_user = NewUserObservations { neighbors: vec![UserId(9_999)], mentions: vec![] };
        assert_eq!(engine.fold_in(&bad_user).unwrap_err(), FoldInError::UnknownUser(UserId(9_999)));
        let bad_venue =
            NewUserObservations { neighbors: vec![], mentions: vec![VenueId(u32::MAX)] };
        assert_eq!(
            engine.fold_in(&bad_venue).unwrap_err(),
            FoldInError::UnknownVenue(VenueId(u32::MAX))
        );
        // A batch propagates the first error.
        assert!(engine.fold_in_batch(std::slice::from_ref(&bad_user)).is_err());
    }

    #[test]
    fn engine_rejects_mismatched_gazetteer() {
        let (gaz, _, snap) = train(50, 113);
        // Shape mismatch: `with_synthetic` only grows the table, so ask
        // for strictly more cities than the snapshot's gazetteer has.
        let other = Gazetteer::with_synthetic(&mlp_gazetteer::SynthConfig {
            total_cities: gaz.num_cities() + 25,
            seed: 1,
            ..Default::default()
        });
        assert!(matches!(
            FoldInEngine::new(&snap, &other, FoldInConfig::default()),
            Err(FoldInError::GazetteerMismatch { .. })
        ));

        // Content mismatch with *identical* shape: same cities, one
        // population nudged. City ids would all "fit" — the content
        // fingerprint is what catches it.
        let mut cities = gaz.cities().to_vec();
        cities[0].population += 1;
        let same_shape = Gazetteer::from_cities(cities);
        assert_eq!(same_shape.num_cities(), gaz.num_cities());
        assert_eq!(same_shape.num_venues(), gaz.num_venues());
        assert!(matches!(
            FoldInEngine::new(&snap, &same_shape, FoldInConfig::default()),
            Err(FoldInError::GazetteerMismatch { .. })
        ));
    }

    #[test]
    fn batch_observation_builder_matches_per_user_scan() {
        let (_, data, _) = train(80, 131);
        // Duplicates and an out-of-range id exercise the slot logic.
        let users = vec![UserId(3), UserId(0), UserId(3), UserId(79), UserId(9_999), UserId(12)];
        let batch = NewUserObservations::batch_from_dataset(&data.dataset, &users);
        assert_eq!(batch.len(), users.len());
        for (&u, obs) in users.iter().zip(&batch) {
            if u.index() < data.dataset.num_users() {
                let mut expect = NewUserObservations::default();
                for e in &data.dataset.edges {
                    if e.follower == u {
                        expect.neighbors.push(e.friend);
                    } else if e.friend == u {
                        expect.neighbors.push(e.follower);
                    }
                }
                for m in &data.dataset.mentions {
                    if m.user == u {
                        expect.mentions.push(m.venue);
                    }
                }
                assert_eq!(obs, &expect, "user {u}");
            } else {
                assert_eq!(obs, &NewUserObservations::default(), "out-of-range {u}");
            }
        }
        assert_eq!(batch[0], batch[2], "duplicate users share observations");
    }

    #[test]
    fn variant_gates_which_observations_are_consumed() {
        // A TweetingOnly snapshot must ignore neighbors entirely: folding
        // in with and without them gives identical profiles.
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 120, seed: 127, ..Default::default() },
        )
        .generate();
        let config = MlpConfig::tweeting_only();
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        for _ in 0..6 {
            sampler.sweep();
            sampler.state.accumulate();
        }
        let snap = PosteriorSnapshot::freeze(&sampler);
        let engine = FoldInEngine::new(&snap, &gaz, FoldInConfig::default()).unwrap();

        let mentions = NewUserObservations::from_dataset(&data.dataset, UserId(0)).mentions;
        let with_neighbors = NewUserObservations {
            neighbors: data.dataset.labeled_users().take(3).collect(),
            mentions: mentions.clone(),
        };
        let without = NewUserObservations { neighbors: vec![], mentions };
        assert_eq!(
            engine.fold_in(&with_neighbors).unwrap(),
            engine.fold_in(&without).unwrap(),
            "TweetingOnly fold-in must not consume edges"
        );
    }
}
