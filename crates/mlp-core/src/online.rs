//! Incremental posterior refresh: committing what serving learns back
//! into the model, without retraining.
//!
//! The model is trained once by collapsed Gibbs sampling and frozen into
//! a [`PosteriorSnapshot`]; fold-in serving ([`crate::infer`]) then
//! answers unseen-user requests against the immutable artifact. That
//! leaves a gap for a long-running system: every served user's inferred
//! posterior — and the venue evidence they arrived with — is thrown away,
//! so the model drifts ever further from the population it serves until
//! someone pays for a full retrain.
//!
//! [`OnlineUpdater`] closes the gap:
//!
//! * **absorb** — fold a batch of new users into the current snapshot
//!   (the exact serving chains, so answers match what a serving replica
//!   would have said) and stage their posterior rows plus expected venue
//!   counts in a pending [`SnapshotDelta`];
//! * **commit** — apply the pending delta to the snapshot: user rows
//!   append to the CSR user arena and `φ` increments merge index-wise
//!   into the venue CSR. No clone of the trained state, no retrain;
//!   committed users become first-class — later requests can reference
//!   them as neighbors, and their venue evidence sharpens `φ` for
//!   everyone;
//! * **compact** — merge the commit history into one delta, bounding the
//!   artifact's record count;
//! * **bounded staleness** — deltas are an approximation (absorbed users
//!   are folded in against frozen counts; trained users' rows never
//!   move), so a [`StalenessPolicy`] says when the accumulated error
//!   warrants a cold retrain: after a commit budget, or when a measured
//!   drift metric (e.g. the `mlp-eval` drift report comparing refreshed
//!   vs cold-retrained accuracy) crosses a threshold.
//!
//! Everything is deterministic: absorbing the same batches in the same
//! order commits byte-identical artifacts (pinned by the online-refresh
//! determinism suite), because fold-in chains are seeded by request index
//! and delta merges are index-wise.

use crate::infer::{FoldInConfig, FoldInEngine, FoldInError, FoldInProfile, NewUserObservations};
use crate::snapshot::{PosteriorSnapshot, SnapshotDelta, SnapshotError};
use bytes::Bytes;
use mlp_gazetteer::Gazetteer;
use std::sync::OnceLock;

/// Errors raised while building an [`OnlineUpdater`] — either the serving
/// side (snapshot/gazetteer mismatch) or the format side (unencodable
/// state) can object.
#[derive(Debug, PartialEq)]
#[non_exhaustive]
pub enum OnlineError {
    /// The snapshot cannot serve against this gazetteer.
    FoldIn(FoldInError),
    /// The snapshot cannot be encoded/committed within format limits.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnlineError::FoldIn(e) => write!(f, "{e}"),
            OnlineError::Snapshot(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OnlineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OnlineError::FoldIn(e) => Some(e),
            OnlineError::Snapshot(e) => Some(e),
        }
    }
}

impl From<FoldInError> for OnlineError {
    fn from(e: FoldInError) -> Self {
        OnlineError::FoldIn(e)
    }
}

impl From<SnapshotError> for OnlineError {
    fn from(e: SnapshotError) -> Self {
        OnlineError::Snapshot(e)
    }
}

/// When accumulated online updates warrant a cold retrain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StalenessPolicy {
    /// Refresh after this many commits (0 disables the commit budget).
    pub refresh_after_commits: usize,
    /// Refresh once the recorded drift metric exceeds this (an accuracy
    /// gap, so e.g. `0.05` = refreshed serving trails a cold retrain by
    /// five accuracy points).
    pub drift_threshold: f64,
}

impl Default for StalenessPolicy {
    fn default() -> Self {
        Self { refresh_after_commits: 8, drift_threshold: 0.05 }
    }
}

/// Accumulates new-user observations into mergeable deltas and commits
/// them into a [`PosteriorSnapshot`] — the online half of the train /
/// serve / refresh loop. See the module docs for the lifecycle.
pub struct OnlineUpdater<'a> {
    gaz: &'a Gazetteer,
    snapshot: PosteriorSnapshot,
    fold_in: FoldInConfig,
    policy: StalenessPolicy,
    /// The base artifact (a v5 encode of the snapshot as of the last
    /// rebase, empty delta section), captured *lazily* — on the first
    /// commit or publish, whichever comes first — so merely opening a
    /// model (especially a mapped one) never pays an arena encode.
    /// Publishing an update then rewrites the trailing delta section
    /// instead of re-encoding the arenas.
    base_artifact: OnceLock<Bytes>,
    /// Snapshot-derived fold-in state (noise models, hyper-parameters,
    /// popular fallback), derived once here — delta commits never change
    /// it — so each absorb rebinds a fold-in engine without re-walking
    /// the gazetteer fingerprint or re-sorting cities.
    parts: crate::infer::DerivedParts,
    /// Staged but not yet committed.
    pending: SnapshotDelta,
    /// Commit history since the base snapshot, in order.
    committed: Vec<SnapshotDelta>,
    commits: usize,
    last_drift: f64,
}

impl<'a> OnlineUpdater<'a> {
    /// Binds a trained snapshot to its gazetteer. Fails (typed) when the
    /// snapshot was trained against different geography or exceeds the
    /// format's encodable limits.
    pub fn new(
        gaz: &'a Gazetteer,
        snapshot: PosteriorSnapshot,
        fold_in: FoldInConfig,
        policy: StalenessPolicy,
    ) -> Result<Self, OnlineError> {
        // Engine construction performs the fingerprint validation; the
        // engine itself is rebuilt per absorb (the snapshot mutates
        // between commits) from the parts derived here.
        FoldInEngine::new(&snapshot, gaz, fold_in.clone())?;
        let parts = crate::infer::DerivedParts::derive(&snapshot, gaz, fold_in.fallback_popular_k);
        let base_users = snapshot.num_users() as u32;
        Ok(Self {
            gaz,
            snapshot,
            fold_in,
            policy,
            base_artifact: OnceLock::new(),
            parts,
            pending: SnapshotDelta::new(base_users),
            committed: Vec::new(),
            commits: 0,
            last_drift: 0.0,
        })
    }

    /// The current (base + committed deltas) posterior. Pending absorbed
    /// users are *not* visible here until [`Self::commit`].
    pub fn snapshot(&self) -> &PosteriorSnapshot {
        &self.snapshot
    }

    /// The snapshot-derived fold-in state computed at construction —
    /// shared with [`crate::engine::ServingEngine`] so the read path and
    /// the absorb path can never derive divergent copies.
    pub(crate) fn derived_parts(&self) -> &crate::infer::DerivedParts {
        &self.parts
    }

    /// Consumes the updater, returning the refreshed snapshot (pending
    /// uncommitted work is dropped).
    pub fn into_snapshot(self) -> PosteriorSnapshot {
        self.snapshot
    }

    /// Folds a batch of new users into the current snapshot and stages
    /// their posterior rows + expected venue counts in the pending delta.
    /// Returns the serving profiles — bit-identical to what
    /// [`FoldInEngine::fold_in_batch`] would answer for the same batch
    /// against the same snapshot, so absorbing *is* serving.
    ///
    /// Users absorbed in the same pending delta do not see each other (the
    /// same approximation a parallel sweep makes within one chunk); they
    /// become referenceable neighbors after [`Self::commit`].
    pub fn absorb(
        &mut self,
        batch: &[NewUserObservations],
    ) -> Result<Vec<FoldInProfile>, FoldInError> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let engine = FoldInEngine::from_validated_parts(
            &self.snapshot,
            self.gaz,
            self.fold_in.clone(),
            self.parts.clone(),
        );
        let records = engine.fold_in_records(batch)?;
        let mut profiles = Vec::with_capacity(records.len());
        // One COO merge for the whole batch — per-record merging would
        // rewrite the growing pending slabs once per user (O(B²)).
        let mut venue_deltas: Vec<_> = Vec::new();
        for rec in records {
            self.pending.push_user(rec.posterior);
            venue_deltas.extend(rec.venue_deltas);
            profiles.push(rec.profile);
        }
        // Stable sort: equal keys keep record order, so the f64 sums
        // accumulate in exactly the order per-record merging produced.
        venue_deltas.sort_by_key(|&(l, v, _)| (l, v));
        venue_deltas.dedup_by(|next, kept| {
            let same = kept.0 == next.0 && kept.1 == next.1;
            if same {
                kept.2 += next.2;
            }
            same
        });
        self.pending.add_venue_weights(&venue_deltas);
        Ok(profiles)
    }

    /// Users absorbed but not yet committed.
    pub fn pending_users(&self) -> usize {
        self.pending.num_new_users()
    }

    /// The staged (absorbed, uncommitted) delta — what the serving
    /// engine's write-ahead log persists *before* [`Self::commit`]
    /// applies it, so the on-disk log is never behind the published
    /// state.
    pub(crate) fn pending_delta(&self) -> &SnapshotDelta {
        &self.pending
    }

    /// Re-anchors the updater on its current snapshot: the base-artifact
    /// cache is reset to `artifact` — the caller's just-checkpointed
    /// encoding of the live posterior — and the commit history is
    /// cleared. Used after log compaction checkpoints the full state to
    /// disk: the history is already folded into the new base artifact,
    /// so keeping the records would double-apply them. The commit
    /// *count* driving the staleness policy is untouched.
    pub(crate) fn rebase(&mut self, artifact: Bytes) {
        self.base_artifact = OnceLock::new();
        let _ = self.base_artifact.set(artifact);
        self.committed.clear();
    }

    /// [`Self::rebase`] that also swaps in a replacement snapshot (the
    /// checkpoint remap path: the freshly written v5 artifact reopened
    /// zero-copy) and seeds the base-artifact cache with the bytes that
    /// were just written, so the next publish is again incremental.
    ///
    /// The caller guarantees `snapshot` is logically identical to the
    /// current one and `artifact` is its encoding — both debug-asserted.
    pub(crate) fn rebase_onto(&mut self, snapshot: PosteriorSnapshot, artifact: Bytes) {
        debug_assert_eq!(snapshot.num_users(), self.snapshot.num_users());
        debug_assert_eq!(snapshot.gaz_fingerprint, self.snapshot.gaz_fingerprint);
        self.snapshot = snapshot;
        self.base_artifact = OnceLock::new();
        let _ = self.base_artifact.set(artifact);
        self.committed.clear();
    }

    /// Captures the base artifact if it has not been captured since the
    /// last rebase. Must run *before* a commit mutates the snapshot —
    /// after that the snapshot is base + history and re-encoding it would
    /// double-apply the records appended at publish time.
    fn ensure_base_artifact(&self) -> Result<&Bytes, SnapshotError> {
        if let Some(bytes) = self.base_artifact.get() {
            return Ok(bytes);
        }
        let encoded = self.snapshot.try_encode()?;
        Ok(self.base_artifact.get_or_init(|| encoded))
    }

    /// Commits the pending delta into the snapshot; returns how many
    /// users were appended (0 when nothing was pending — not counted as a
    /// commit). On error the snapshot *and* the pending delta are left
    /// unchanged.
    pub fn commit(&mut self) -> Result<usize, SnapshotError> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        // The base artifact must be frozen before the first mutation
        // since rebase; later commits find it already cached.
        self.ensure_base_artifact()?;
        self.snapshot.apply_delta(&self.pending)?;
        let n = self.pending.num_new_users();
        let next = SnapshotDelta::new(self.snapshot.num_users() as u32);
        self.committed.push(std::mem::replace(&mut self.pending, next));
        self.commits += 1;
        Ok(n)
    }

    /// Number of commits since the base snapshot.
    pub fn commits(&self) -> usize {
        self.commits
    }

    /// The committed delta history, in apply order.
    pub fn committed_deltas(&self) -> &[SnapshotDelta] {
        &self.committed
    }

    /// Merges the commit history into a single delta, bounding the
    /// artifact's record count. Semantically equivalent — user rows
    /// concatenate exactly; `φ` cells touched by several commits can
    /// differ in the final f64 ulp because their weights pre-sum before
    /// the base add. (The commit *count* driving the staleness policy is
    /// deliberately untouched — compaction bounds artifact size, not
    /// approximation error.)
    pub fn compact(&mut self) -> Result<(), SnapshotError> {
        if self.committed.len() <= 1 {
            return Ok(());
        }
        // Merge into a scratch copy so a failed merge (impossible for a
        // history this updater built, but typed anyway) changes nothing.
        let mut compacted = self.committed[0].clone();
        for d in &self.committed[1..] {
            compacted.merge(d)?;
        }
        self.committed = vec![compacted];
        Ok(())
    }

    /// Records an externally measured drift metric (e.g.
    /// `mlp_eval::DriftReport::drift` — the accuracy gap between this
    /// refreshed posterior and a cold retrain on the same data).
    pub fn record_drift(&mut self, drift: f64) {
        self.last_drift = drift;
    }

    /// The most recently recorded drift metric.
    pub fn last_drift(&self) -> f64 {
        self.last_drift
    }

    /// Whether the staleness policy says it is time for a cold retrain:
    /// the commit budget is spent, or recorded drift crossed the
    /// threshold. The updater keeps working either way — this is a
    /// signal, the retrain itself is the caller's (scheduler's) move.
    pub fn needs_refresh(&self) -> bool {
        (self.policy.refresh_after_commits > 0 && self.commits >= self.policy.refresh_after_commits)
            || self.last_drift > self.policy.drift_threshold
    }

    /// Encodes the refreshed posterior as a v5 artifact: the base bytes
    /// captured at the last rebase with the trailing delta section
    /// rewritten to hold every committed delta as a CRC-framed record.
    /// Decoding replays the records, so the result thaws equal to
    /// [`Self::snapshot`]. Publishing after another commit rewrites only
    /// the delta section and two checksums — the arena sections never
    /// re-encode.
    pub fn encode_artifact(&self) -> Result<Bytes, SnapshotError> {
        let base = self.ensure_base_artifact()?;
        crate::snapshot::v5_set_delta_section(base.as_slice(), &self.committed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MlpConfig;
    use crate::model::Mlp;
    use mlp_social::{Dataset, Generator, GeneratorConfig, UserId};

    fn trained(
        users: usize,
        seed: u64,
    ) -> (Gazetteer, mlp_social::GeneratedData, PosteriorSnapshot) {
        let gaz = Gazetteer::us_cities();
        let data =
            Generator::new(&gaz, GeneratorConfig { num_users: users, seed, ..Default::default() })
                .generate();
        let config = MlpConfig { iterations: 6, burn_in: 3, seed, ..Default::default() };
        let prefix = data.dataset.prefix(users - 20);
        let (_, snap) = Mlp::new(&gaz, &prefix, config).unwrap().run_with_snapshot();
        (gaz, data, snap)
    }

    fn new_user_batch(
        data: &mlp_social::GeneratedData,
        known: usize,
        users: std::ops::Range<u32>,
    ) -> Vec<NewUserObservations> {
        let ids: Vec<UserId> = users.map(UserId).collect();
        let mut batch = NewUserObservations::batch_from_dataset(&data.dataset, &ids);
        for obs in &mut batch {
            obs.neighbors.retain(|p| p.index() < known);
        }
        batch
    }

    #[test]
    fn absorb_matches_plain_serving() {
        let (gaz, data, snap) = trained(120, 901);
        let batch = new_user_batch(&data, snap.num_users(), 100..110);
        let engine = FoldInEngine::new(&snap, &gaz, FoldInConfig::default()).unwrap();
        let served = engine.fold_in_batch(&batch).unwrap();
        let mut updater =
            OnlineUpdater::new(&gaz, snap, FoldInConfig::default(), StalenessPolicy::default())
                .unwrap();
        let absorbed = updater.absorb(&batch).unwrap();
        assert_eq!(served, absorbed, "absorbing must answer exactly like serving");
    }

    #[test]
    fn commit_appends_users_and_venue_mass() {
        let (gaz, data, snap) = trained(120, 903);
        let base_users = snap.num_users();
        let city_mass: f64 = (0..gaz.num_cities())
            .map(|l| snap.venues.city_total(mlp_gazetteer::CityId(l as u32)))
            .sum();
        let mut updater =
            OnlineUpdater::new(&gaz, snap, FoldInConfig::default(), StalenessPolicy::default())
                .unwrap();
        let batch = new_user_batch(&data, base_users, 100..120);
        updater.absorb(&batch).unwrap();
        assert_eq!(updater.pending_users(), 20);
        assert_eq!(updater.commit().unwrap(), 20);
        assert_eq!(updater.pending_users(), 0);
        assert_eq!(updater.snapshot().num_users(), base_users + 20);
        let refreshed_mass: f64 = (0..gaz.num_cities())
            .map(|l| updater.snapshot().venues.city_total(mlp_gazetteer::CityId(l as u32)))
            .sum();
        let mention_tokens: usize = batch.iter().map(|o| o.mentions.len()).sum();
        assert!(
            refreshed_mass > city_mass,
            "committed venue evidence must add φ mass ({refreshed_mass} vs {city_mass})"
        );
        assert!(
            refreshed_mass <= city_mass + mention_tokens as f64 + 1e-6,
            "φ mass cannot exceed the absorbed token count"
        );
        // Committed users are first-class: a later request may cite them.
        let newest = UserId((base_users + 19) as u32);
        let follow_new = vec![NewUserObservations { neighbors: vec![newest], mentions: vec![] }];
        assert!(updater.absorb(&follow_new).is_ok());
    }

    #[test]
    fn empty_commit_is_a_no_op() {
        let (gaz, _, snap) = trained(80, 905);
        let before = snap.clone();
        let mut updater =
            OnlineUpdater::new(&gaz, snap, FoldInConfig::default(), StalenessPolicy::default())
                .unwrap();
        assert_eq!(updater.commit().unwrap(), 0);
        assert_eq!(updater.commits(), 0);
        assert_eq!(updater.snapshot(), &before);
        assert!(updater.absorb(&[]).unwrap().is_empty());
    }

    #[test]
    fn staleness_policy_triggers_on_commits_and_drift() {
        let (gaz, data, snap) = trained(120, 907);
        let base_users = snap.num_users();
        let policy = StalenessPolicy { refresh_after_commits: 2, drift_threshold: 0.1 };
        let mut updater = OnlineUpdater::new(&gaz, snap, FoldInConfig::default(), policy).unwrap();
        assert!(!updater.needs_refresh());
        for start in [100u32, 110u32] {
            let batch = new_user_batch(&data, base_users, start..start + 10);
            updater.absorb(&batch).unwrap();
            updater.commit().unwrap();
        }
        assert_eq!(updater.commits(), 2);
        assert!(updater.needs_refresh(), "commit budget spent");

        // Drift alone also triggers.
        let (gaz2, _, snap2) = trained(80, 909);
        let mut fresh = OnlineUpdater::new(&gaz2, snap2, FoldInConfig::default(), policy).unwrap();
        assert!(!fresh.needs_refresh());
        fresh.record_drift(0.2);
        assert!(fresh.needs_refresh(), "drift over threshold");
    }

    #[test]
    fn compaction_preserves_the_artifact_semantics() {
        let (gaz, data, snap) = trained(140, 911);
        let base_users = snap.num_users();
        let mut updater =
            OnlineUpdater::new(&gaz, snap, FoldInConfig::default(), StalenessPolicy::default())
                .unwrap();
        for start in [120u32, 130u32] {
            let batch = new_user_batch(&data, base_users, start..start + 10);
            updater.absorb(&batch).unwrap();
            updater.commit().unwrap();
        }
        assert_eq!(updater.committed_deltas().len(), 2);
        let artifact = updater.encode_artifact().unwrap();
        updater.compact().unwrap();
        assert_eq!(updater.committed_deltas().len(), 1);
        let compacted = updater.encode_artifact().unwrap();
        assert!(compacted.len() < artifact.len(), "compaction must shrink the record section");
        let a = PosteriorSnapshot::decode(artifact).unwrap();
        let b = PosteriorSnapshot::decode(compacted).unwrap();
        // The uncompacted artifact replays the exact commit sequence —
        // byte-identical to the live snapshot.
        assert_eq!(&a, updater.snapshot());
        // Compaction pre-sums venue weights before the base add, so
        // overlapping φ cells can differ in the last f64 bit
        // ((base + w₁) + w₂ vs base + (w₁ + w₂)); everything else —
        // user rows, hyperparameters, support layout — is exact.
        assert_eq!(a.users, b.users);
        assert_eq!(a.num_users(), b.num_users());
        for l in 0..a.num_cities {
            let city = mlp_gazetteer::CityId(l);
            let (ra, rb): (Vec<_>, Vec<_>) =
                (a.venues.row(city).collect(), b.venues.row(city).collect());
            assert_eq!(ra.len(), rb.len(), "city {l} support diverged");
            for ((va, ca), (vb, cb)) in ra.iter().zip(&rb) {
                assert_eq!(va, vb, "city {l} venue ids diverged");
                assert!((ca - cb).abs() < 1e-9, "city {l} venue {va}: {ca} vs {cb}");
            }
            let (ta, tb) = (a.venues.city_total(city), b.venues.city_total(city));
            assert!((ta - tb).abs() < 1e-9, "city {l} total: {ta} vs {tb}");
        }
    }

    #[test]
    fn rejects_mismatched_gazetteer_at_construction() {
        let (gaz, _, snap) = trained(80, 913);
        let other = Gazetteer::with_synthetic(&mlp_gazetteer::SynthConfig {
            total_cities: gaz.num_cities() + 10,
            seed: 3,
            ..Default::default()
        });
        assert!(matches!(
            OnlineUpdater::new(&other, snap, FoldInConfig::default(), StalenessPolicy::default()),
            Err(OnlineError::FoldIn(FoldInError::GazetteerMismatch { .. }))
        ));
    }

    #[test]
    fn prefix_dataset_used_in_tests_is_consistent() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 60, seed: 915, ..Default::default() },
        )
        .generate();
        let p: Dataset = data.dataset.prefix(40);
        assert_eq!(p.num_users(), 40);
        p.validate(gaz.num_cities(), gaz.num_venues()).unwrap();
        assert!(p.edges.iter().all(|e| e.follower.index() < 40 && e.friend.index() < 40));
        assert!(p.mentions.iter().all(|m| m.user.index() < 40));
    }
}
