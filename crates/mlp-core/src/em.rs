//! Gibbs-EM refinement of the power law `(α, β)` (paper Sec. 4.5).
//!
//! "At the E-step, we use the same Gibbs sampling algorithm to estimate
//! x_{s,i} and y_{s,i}'s distribution and calculate the expected distance of
//! each following relationship. At the M-step, we estimate α and β based on
//! the expected distance for each following relationship."
//!
//! Concretely the M-step re-runs the Fig. 3(a) construction against the
//! *inferred* quantities: bucket all user pairs by the distance between
//! their current home estimates (aggregated at city granularity, so the
//! pair count is a |L|² loop instead of N²), bucket the location-based
//! edges by their assigned `d(x_s, y_s)`, and fit a weighted log–log line
//! to the per-bucket following probabilities.

use crate::candidacy::Candidacy;
use crate::fit::fit_from_histogram;
use crate::state::SamplerState;
use mlp_gazetteer::{CityId, Gazetteer};
use mlp_geo::PowerLaw;
use mlp_social::{Dataset, UserId};

/// Re-estimates `(α, β)` from the sampler's current assignments.
///
/// `home_of` supplies each user's current home estimate (argmax of θ̂).
/// Returns `None` — leaving the caller's power law untouched — when the fit
/// is degenerate (too few location-based edges or all mass in one bucket).
pub fn refit_power_law(
    gaz: &Gazetteer,
    dataset: &Dataset,
    candidacy: &Candidacy,
    state: &SamplerState,
    home_of: impl Fn(UserId) -> CityId,
) -> Option<PowerLaw> {
    // Users per estimated home city.
    let mut city_counts = vec![0u64; gaz.num_cities()];
    for u in 0..dataset.num_users() {
        city_counts[home_of(UserId(u as u32)).index()] += 1;
    }

    // Successes: location-based edges at their assigned distance.
    let edge_distances = dataset.edges.iter().enumerate().filter_map(|(s, e)| {
        if state.mu[s] {
            return None;
        }
        let x = candidacy.candidates(e.follower)[state.x[s] as usize];
        let y = candidacy.candidates(e.friend)[state.y[s] as usize];
        Some(gaz.distance(x, y))
    });
    fit_from_histogram(gaz, &city_counts, edge_distances, 50)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MlpConfig;
    use crate::random_models::RandomModels;
    use crate::sampler::GibbsSampler;
    use mlp_social::{Adjacency, Generator, GeneratorConfig};

    #[test]
    fn refit_recovers_generator_exponent_region() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 1_500, seed: 41, ..Default::default() },
        )
        .generate();
        let config = MlpConfig::default();
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        for _ in 0..6 {
            sampler.sweep();
            sampler.state.accumulate();
        }
        let fit = refit_power_law(&gaz, &data.dataset, &cand, &sampler.state, |u| {
            sampler.estimate_theta(u)[0].0
        })
        .expect("refit should succeed at this scale");
        // The generator used α = −0.55; the refit should land in a
        // recognisable neighbourhood (city-level aggregation and the noisy
        // mixture blur it).
        assert!(
            (-1.4..=-0.15).contains(&fit.alpha),
            "refit alpha {} too far from generator's -0.55",
            fit.alpha
        );
        assert!(fit.beta > 0.0);
    }

    #[test]
    fn refit_refuses_degenerate_input() {
        let gaz = Gazetteer::us_cities();
        // Dataset with just a handful of edges — far below the 50-edge floor.
        let data = Generator::new(
            &gaz,
            GeneratorConfig {
                num_users: 3,
                seed: 43,
                mean_friends: 1.0,
                mean_mentions: 1.0,
                ..Default::default()
            },
        )
        .generate();
        let config = MlpConfig::default();
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        let sampler = GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
        let fit = refit_power_law(&gaz, &data.dataset, &cand, &sampler.state, |u| {
            sampler.estimate_theta(u)[0].0
        });
        assert!(fit.is_none());
    }
}
