//! Model configuration with the paper's hyper-parameters as defaults.

use mlp_geo::PowerLaw;

/// A configuration field that cannot drive a well-defined chain.
///
/// Both [`MlpConfig::validate`] and
/// [`crate::infer::FoldInConfig::validate`] report violations through this
/// one enum, and the [`crate::engine::EngineBuilder`] build paths refuse to
/// construct a [`crate::engine::ServingEngine`] over an invalid
/// configuration — degenerate chains (zero sweeps, burn-in swallowing every
/// sample, zero worker threads) fail loudly at build time instead of
/// silently producing garbage posteriors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A count field that must be nonzero (iterations, sweeps, threads,
    /// EM rounds, fallback candidates) was zero.
    Zero(&'static str),
    /// `burn_in` must be strictly below the chain length, or every sweep
    /// is discarded and the accumulated posterior is empty.
    BurnInTooLarge {
        /// The configured burn-in.
        burn_in: usize,
        /// The configured chain length it must stay below.
        chain_len: usize,
    },
    /// A real-valued hyper-parameter sat outside its domain (NaN included).
    OutOfDomain {
        /// Field name.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable domain, e.g. `"(0, inf)"`.
        domain: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Zero(name) => write!(f, "{name} must be positive"),
            ConfigError::BurnInTooLarge { burn_in, chain_len } => {
                write!(f, "burn_in ({burn_in}) must be below the chain length ({chain_len})")
            }
            ConfigError::OutOfDomain { name, value, domain } => {
                write!(f, "{name} must lie in {domain}, got {value}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which observation types the model consumes — the paper's three variants
/// evaluated in Tables 2 and 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// `MLP_U`: following relationships only.
    FollowingOnly,
    /// `MLP_C`: tweeting relationships only.
    TweetingOnly,
    /// `MLP`: both (the full model).
    Full,
}

impl Variant {
    /// Whether following relationships are modeled.
    pub fn uses_following(self) -> bool {
        !matches!(self, Variant::TweetingOnly)
    }

    /// Whether tweeting relationships are modeled.
    pub fn uses_tweeting(self) -> bool {
        !matches!(self, Variant::FollowingOnly)
    }
}

/// All hyper-parameters of the MLP model and its inference.
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Which observations to use.
    pub variant: Variant,
    /// Gibbs sweeps (the paper converges in ~14; default leaves headroom).
    pub iterations: usize,
    /// Sweeps discarded before profile counts are accumulated.
    pub burn_in: usize,
    /// τ — base prior for candidate locations (paper: 0.1, "values of hyper
    /// parameter below 1 prefer sparse distributions").
    pub tau: f64,
    /// Diagonal of the boosting matrix Λ: the pseudo-count added to a
    /// labeled user's observed home city.
    pub supervision_boost: f64,
    /// δ — symmetric Dirichlet prior on each city's venue multinomial ψ_l.
    pub delta: f64,
    /// ρ_f — prior probability a following relationship is noisy.
    pub rho_f: f64,
    /// ρ_t — prior probability a tweeting relationship is noisy.
    pub rho_t: f64,
    /// Initial power law; the paper learns α = −0.55, β = 0.0045 from its
    /// crawl (Sec. 4.1).
    pub power_law: PowerLaw,
    /// Whether to learn the initial `(α, β)` from the labeled users before
    /// inference, as the paper does in Sec. 4.1 — this keeps the power law
    /// calibrated against `F_R = S/N²` on *this* dataset. Falls back to
    /// `power_law` when the labeled subgraph is too sparse.
    pub fit_power_law_from_data: bool,
    /// Whether to run the Gibbs-EM outer loop refining `(α, β)` (Sec. 4.5).
    pub gibbs_em: bool,
    /// Outer EM iterations when `gibbs_em` is on.
    pub em_iterations: usize,
    /// Whether noisy relationships' assignments still contribute to profile
    /// counts ϕ. `false` follows the generative semantics (assignments only
    /// exist in the location-based branch); `true` is the literal reading of
    /// Eqs. 7–9. Exposed for the ablation bench.
    pub count_noisy_assignments: bool,
    /// Whether candidacy vectors prune the sampling domain (Sec. 4.3).
    /// `false` means every city is a candidate for every user (ablation;
    /// dramatically slower and, per the paper, less accurate).
    pub candidacy_pruning: bool,
    /// Candidate fallback: users with no location signal at all get the
    /// `k` most populous cities as candidates.
    pub fallback_popular_k: usize,
    /// Worker threads for the sweep. 1 = exact sequential Gibbs; >1 uses the
    /// AD-LDA-style approximate parallel sweep.
    pub threads: usize,
    /// RNG seed for inference.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self {
            variant: Variant::Full,
            iterations: 30,
            burn_in: 10,
            tau: 0.1,
            supervision_boost: 20.0,
            delta: 0.05,
            rho_f: 0.15,
            rho_t: 0.20,
            power_law: PowerLaw::PAPER_TWITTER,
            fit_power_law_from_data: true,
            gibbs_em: false,
            em_iterations: 3,
            count_noisy_assignments: false,
            candidacy_pruning: true,
            fallback_popular_k: 10,
            threads: 1,
            seed: 7,
        }
    }
}

impl MlpConfig {
    /// The paper's `MLP_U` variant (network only).
    pub fn following_only() -> Self {
        Self { variant: Variant::FollowingOnly, ..Default::default() }
    }

    /// The paper's `MLP_C` variant (content only).
    pub fn tweeting_only() -> Self {
        Self { variant: Variant::TweetingOnly, ..Default::default() }
    }

    /// Validates parameter ranges; returns the first violation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.iterations == 0 {
            return Err(ConfigError::Zero("iterations"));
        }
        if self.burn_in >= self.iterations {
            return Err(ConfigError::BurnInTooLarge {
                burn_in: self.burn_in,
                chain_len: self.iterations,
            });
        }
        for (name, v) in [("tau", self.tau), ("delta", self.delta)] {
            if !(v > 0.0) || !v.is_finite() {
                return Err(ConfigError::OutOfDomain { name, value: v, domain: "(0, inf)" });
            }
        }
        if !(self.supervision_boost >= 0.0) {
            return Err(ConfigError::OutOfDomain {
                name: "supervision_boost",
                value: self.supervision_boost,
                domain: "[0, inf)",
            });
        }
        for (name, p) in [("rho_f", self.rho_f), ("rho_t", self.rho_t)] {
            if !(0.0..1.0).contains(&p) {
                return Err(ConfigError::OutOfDomain { name, value: p, domain: "[0, 1)" });
            }
        }
        if self.threads == 0 {
            return Err(ConfigError::Zero("threads"));
        }
        if self.gibbs_em && self.em_iterations == 0 {
            return Err(ConfigError::Zero("em_iterations (gibbs_em is on)"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let c = MlpConfig::default();
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(c.tau, 0.1, "paper Sec. 4.3: τ = 0.1");
        assert_eq!(c.power_law.alpha, -0.55, "paper Sec. 4.1");
        assert_eq!(c.power_law.beta, 0.0045, "paper Sec. 4.1");
        assert_eq!(c.variant, Variant::Full);
    }

    #[test]
    fn variants_select_observations() {
        assert!(Variant::Full.uses_following() && Variant::Full.uses_tweeting());
        assert!(Variant::FollowingOnly.uses_following());
        assert!(!Variant::FollowingOnly.uses_tweeting());
        assert!(!Variant::TweetingOnly.uses_following());
        assert!(Variant::TweetingOnly.uses_tweeting());
        assert_eq!(MlpConfig::following_only().variant, Variant::FollowingOnly);
        assert_eq!(MlpConfig::tweeting_only().variant, Variant::TweetingOnly);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let ok = MlpConfig::default();
        assert!(MlpConfig { iterations: 0, ..ok.clone() }.validate().is_err());
        assert!(MlpConfig { burn_in: 30, ..ok.clone() }.validate().is_err());
        assert!(MlpConfig { tau: 0.0, ..ok.clone() }.validate().is_err());
        assert!(MlpConfig { delta: -1.0, ..ok.clone() }.validate().is_err());
        assert!(MlpConfig { rho_f: 1.0, ..ok.clone() }.validate().is_err());
        assert!(MlpConfig { rho_t: -0.1, ..ok.clone() }.validate().is_err());
        assert!(MlpConfig { threads: 0, ..ok.clone() }.validate().is_err());
        assert!(MlpConfig { supervision_boost: -1.0, ..ok.clone() }.validate().is_err());
        assert!(MlpConfig { gibbs_em: true, em_iterations: 0, ..ok.clone() }.validate().is_err());
    }

    #[test]
    fn validation_errors_are_typed_and_printable() {
        let ok = MlpConfig::default();
        assert_eq!(
            MlpConfig { iterations: 0, ..ok.clone() }.validate(),
            Err(ConfigError::Zero("iterations"))
        );
        assert_eq!(
            MlpConfig { burn_in: 30, iterations: 30, ..ok.clone() }.validate(),
            Err(ConfigError::BurnInTooLarge { burn_in: 30, chain_len: 30 })
        );
        let nan = MlpConfig { tau: f64::NAN, ..ok.clone() }.validate().unwrap_err();
        assert!(matches!(nan, ConfigError::OutOfDomain { name: "tau", .. }));
        let msg = MlpConfig { rho_f: 1.5, ..ok }.validate().unwrap_err().to_string();
        assert!(msg.contains("rho_f") && msg.contains("[0, 1)"), "{msg}");
    }
}
