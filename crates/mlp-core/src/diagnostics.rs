//! Per-iteration convergence telemetry.
//!
//! Fig. 5 of the paper plots the per-iteration accuracy *change* of MLP and
//! shows convergence after ~14 sweeps. Without ground truth at inference
//! time we track the observable analogues: the fraction of assignment
//! variables that changed and the fraction of users whose predicted home
//! moved, plus the joint log-likelihood proxy.

use serde::Serialize;

/// Telemetry for one Gibbs sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct IterationStats {
    /// Sweep number, 0-based (within the current EM round).
    pub iteration: usize,
    /// Fraction of edge variables that changed.
    pub edge_change_fraction: f64,
    /// Fraction of mention variables that changed.
    pub mention_change_fraction: f64,
    /// Fraction of users whose argmax-θ̂ home moved since the last sweep.
    pub home_change_fraction: f64,
    /// Joint log-likelihood proxy after the sweep.
    pub log_likelihood: f64,
}

/// Collected telemetry for a full run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Diagnostics {
    /// One entry per sweep, across all EM rounds.
    pub iterations: Vec<IterationStats>,
    /// `(α, β)` after each EM refit (empty when Gibbs-EM is off).
    pub power_law_trace: Vec<(f64, f64)>,
}

impl Diagnostics {
    /// Whether the last `window` sweeps all moved fewer than `threshold`
    /// of users' homes — the practical convergence criterion.
    pub fn converged(&self, window: usize, threshold: f64) -> bool {
        if self.iterations.len() < window {
            return false;
        }
        self.iterations[self.iterations.len() - window..]
            .iter()
            .all(|it| it.home_change_fraction <= threshold)
    }

    /// The sweep index after which `home_change_fraction` stayed at or
    /// below `threshold`, if any — the "converges after N iterations"
    /// number the paper quotes.
    pub fn convergence_iteration(&self, threshold: f64) -> Option<usize> {
        let mut candidate = None;
        for it in &self.iterations {
            if it.home_change_fraction <= threshold {
                candidate.get_or_insert(it.iteration);
            } else {
                candidate = None;
            }
        }
        candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(iter: usize, home_change: f64) -> IterationStats {
        IterationStats {
            iteration: iter,
            edge_change_fraction: 0.0,
            mention_change_fraction: 0.0,
            home_change_fraction: home_change,
            log_likelihood: 0.0,
        }
    }

    #[test]
    fn converged_checks_trailing_window() {
        let d = Diagnostics {
            iterations: vec![stats(0, 0.5), stats(1, 0.01), stats(2, 0.005)],
            power_law_trace: vec![],
        };
        assert!(d.converged(2, 0.02));
        assert!(!d.converged(3, 0.02));
        assert!(!d.converged(4, 1.0), "window larger than history");
    }

    #[test]
    fn convergence_iteration_finds_stable_suffix() {
        let d = Diagnostics {
            iterations: vec![
                stats(0, 0.5),
                stats(1, 0.01),
                stats(2, 0.2), // relapse resets the suffix
                stats(3, 0.01),
                stats(4, 0.005),
            ],
            power_law_trace: vec![],
        };
        assert_eq!(d.convergence_iteration(0.02), Some(3));
        assert_eq!(d.convergence_iteration(0.001), None);
    }

    #[test]
    fn empty_diagnostics() {
        let d = Diagnostics::default();
        assert!(!d.converged(1, 1.0));
        assert_eq!(d.convergence_iteration(1.0), None);
    }
}
