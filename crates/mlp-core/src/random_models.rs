//! The empirical random (noise) models `F_R` and `T_R` (paper Sec. 4.2).
//!
//! "We model F_R … as p(f⟨i,j⟩ = 1 | F_R) = S/N², where S is the number of
//! following relationships and N² is the total number of user pairs. We
//! model T_R … as p(t⟨i,j⟩ | T_R) = Σ_x t⟨x,j⟩ / K", i.e. the global
//! empirical popularity of each venue.

use mlp_gazetteer::VenueId;
use mlp_sampling::EmpiricalDistribution;
use mlp_social::Dataset;

/// How venue noise probabilities are backed.
#[derive(Debug, Clone)]
enum VenueNoise {
    /// Learned from observed mention counts, smoothed on lookup.
    Empirical { popularity: EmpiricalDistribution, eps: f64 },
    /// Thawed from a [`crate::snapshot::PosteriorSnapshot`]: the exact
    /// per-venue probabilities the trained model used, bit for bit.
    Frozen(Vec<f64>),
}

/// Learned random models, fixed for the duration of inference.
#[derive(Debug, Clone)]
pub struct RandomModels {
    /// p(f⟨i,j⟩ | F_R) = S / N².
    follow_prob: f64,
    /// Venue popularity `p(t⟨i,j⟩ | T_R)`.
    venue: VenueNoise,
}

impl RandomModels {
    /// Learns both models from the observed dataset.
    pub fn learn(dataset: &Dataset, num_venues: usize) -> Self {
        let n = dataset.num_users() as f64;
        let s = dataset.num_edges() as f64;
        // Guard the degenerate empty graph; any positive probability works
        // because the selector likelihood comparison then never occurs.
        let follow_prob = if n > 0.0 && s > 0.0 { (s / (n * n)).min(1.0) } else { 1e-9 };

        let mut popularity = EmpiricalDistribution::new(num_venues);
        for m in &dataset.mentions {
            popularity.record(m.venue.index(), 1);
        }
        Self { follow_prob, venue: VenueNoise::Empirical { popularity, eps: 0.5 } }
    }

    /// Rebuilds the models from frozen probabilities (snapshot thaw).
    /// Lookups reproduce the training-time values exactly.
    pub fn from_frozen(follow_prob: f64, venue_probs: Vec<f64>) -> Self {
        Self { follow_prob, venue: VenueNoise::Frozen(venue_probs) }
    }

    /// Learns both models from statistics gathered in one streaming pass
    /// (the out-of-core path): identical to [`Self::learn`] on the same
    /// corpus, without ever materialising the dataset.
    pub fn from_stream_stats(num_users: u64, num_edges: u64, venue_mentions: Vec<u64>) -> Self {
        let (n, s) = (num_users as f64, num_edges as f64);
        let follow_prob = if n > 0.0 && s > 0.0 { (s / (n * n)).min(1.0) } else { 1e-9 };
        let popularity = EmpiricalDistribution::from_counts(venue_mentions);
        Self { follow_prob, venue: VenueNoise::Empirical { popularity, eps: 0.5 } }
    }

    /// `p(f⟨i,j⟩ | F_R)`.
    #[inline]
    pub fn follow_prob(&self) -> f64 {
        self.follow_prob
    }

    /// `p(t⟨i,j⟩ | T_R)` for venue `v` (smoothed so unseen venues don't
    /// produce zero likelihood).
    #[inline]
    pub fn venue_prob(&self, v: VenueId) -> f64 {
        match &self.venue {
            VenueNoise::Empirical { popularity, eps } => popularity.smoothed_prob(v.index(), *eps),
            VenueNoise::Frozen(probs) => probs[v.index()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_social::{FollowEdge, TweetMention, UserId};

    #[test]
    fn follow_prob_is_edge_density() {
        let mut d = Dataset::new(10);
        for i in 0..5u32 {
            d.edges.push(FollowEdge { follower: UserId(i), friend: UserId(i + 1) });
        }
        let rm = RandomModels::learn(&d, 4);
        assert!((rm.follow_prob() - 5.0 / 100.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_gets_tiny_positive_prob() {
        let d = Dataset::new(10);
        let rm = RandomModels::learn(&d, 4);
        assert!(rm.follow_prob() > 0.0);
        assert!(rm.follow_prob() < 1e-6);
    }

    #[test]
    fn venue_popularity_reflects_mentions() {
        let mut d = Dataset::new(3);
        for _ in 0..9 {
            d.mentions.push(TweetMention { user: UserId(0), venue: VenueId(1) });
        }
        d.mentions.push(TweetMention { user: UserId(1), venue: VenueId(2) });
        let rm = RandomModels::learn(&d, 4);
        assert!(rm.venue_prob(VenueId(1)) > 5.0 * rm.venue_prob(VenueId(2)));
        // Unseen venue: small but positive.
        assert!(rm.venue_prob(VenueId(3)) > 0.0);
        assert!(rm.venue_prob(VenueId(3)) < rm.venue_prob(VenueId(2)));
    }

    #[test]
    fn venue_probs_form_distribution() {
        let mut d = Dataset::new(2);
        d.mentions.push(TweetMention { user: UserId(0), venue: VenueId(0) });
        d.mentions.push(TweetMention { user: UserId(0), venue: VenueId(2) });
        let rm = RandomModels::learn(&d, 3);
        let total: f64 = (0..3).map(|v| rm.venue_prob(VenueId(v))).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }
}
