//! Out-of-core training: sharded sampler state over a streamed corpus.
//!
//! The in-memory pipeline ([`crate::model::Mlp`]) holds the whole dataset,
//! the full assignment vectors, and the count arenas resident — ~3 GB at
//! the ROADMAP's million-user scale before the first sweep finishes. This
//! module trains from an on-disk chunked corpus
//! ([`mlp_social::stream::CorpusReader`]) instead, with the paper's model
//! state *sharded by user partition*:
//!
//! * **Resident globally** (the part that must be shared): the candidate
//!   lists and priors `γ` (CSR slabs), the collapsed user counts `ϕ` and
//!   their post-burn-in accumulators (flat `u32` arenas in the CSR slot
//!   space), and the venue counts `φ` ([`VenueCountStore`]). This is
//!   O(users · mean-candidates + support) — the irreducible model state.
//! * **Resident per shard, one shard at a time**: the shard's corpus
//!   chunks (re-streamed from disk every super-sweep) and its assignment
//!   vectors (μ/x/y/ν/z), spilled to scratch files between super-sweeps.
//!   Peak RSS is therefore bounded by shard size + global counts, not by
//!   the corpus.
//!
//! ## Sweep semantics (AD-LDA at super-sweep granularity)
//!
//! Training proceeds in *super-sweeps* of `reconcile_every` local sweeps.
//! At the start of a super-sweep the global `ϕ`/`φ` counts are frozen.
//! Each shard then runs its local sweeps against `frozen + its own delta
//! slab` — its own updates are visible immediately (the exclude-current
//! arithmetic of [`EdgeExcluded`]/[`MentionExcluded`] stays exact), while
//! other shards' same-super-sweep updates are stale until the **count
//! reconciliation**: the flat index-wise delta merge that
//! [`crate::parallel`] performs per sweep, here performed per super-sweep.
//! With one shard the schedule degenerates to the exact sequential chain;
//! `reconcile_every` trades staleness against merge/freeze traffic.
//!
//! Post-burn-in, the posterior is accumulated at reconciliation points
//! (every super-sweep contributes one sample of the fully-merged counts),
//! i.e. the chain is *thinned* by `reconcile_every` rather than sampled
//! every sweep — same estimator, fewer, less-correlated samples.
//!
//! The whole run is a pure function of `(gazetteer, corpus, config,
//! shards, reconcile_every)`: every RNG stream is derived from the seed,
//! the shard schedule is deterministic, and all reductions are integer.

use crate::config::MlpConfig;
use crate::count_store::VenueCountStore;
use crate::kernel::{
    self, CountView, EdgeExcluded, Endpoint, MentionExcluded, ProfileView, SamplerView,
};
use crate::model::Mlp;
use crate::parallel::chunk_ranges;
use crate::random_models::RandomModels;
use crate::snapshot::{
    gazetteer_fingerprint, PosteriorSnapshot, UserArena, UserPosterior, VenueArena,
};
use mlp_gazetteer::{CityId, Gazetteer, VenueId};
use mlp_sampling::{sample_categorical, Pcg64, SplitMix64};
use mlp_social::stream::{CorpusChunk, CorpusError, CorpusReader};
use mlp_social::{Csr, UserId};
use std::collections::BTreeMap;
use std::ops::Range;
use std::path::{Path, PathBuf};

// RNG stream phases for the sharded path (disjoint from the sampler's
// 0x9B5 init stream and the parallel driver's 0xE…/0x4… sweep streams).
const PHASE_SHARD_INIT: u64 = 0x7000_0000_0000_0000;
const PHASE_SHARD_SWEEP: u64 = 0x6000_0000_0000_0000;

/// Knobs of the out-of-core training path.
#[derive(Debug, Clone)]
pub struct ShardedTrainConfig {
    /// User partitions. `1` delegates to the exact in-memory sequential
    /// driver (byte-identical to [`Mlp::run_with_snapshot`]).
    pub shards: usize,
    /// Local sweeps per shard between count reconciliations (K).
    pub reconcile_every: usize,
    /// Scratch directory for assignment spill files; defaults to
    /// `<corpus>/train-scratch`. Removed on successful completion.
    pub scratch_dir: Option<PathBuf>,
}

impl Default for ShardedTrainConfig {
    fn default() -> Self {
        Self { shards: 1, reconcile_every: 2, scratch_dir: None }
    }
}

/// Errors raised by out-of-core training.
#[derive(Debug)]
pub enum TrainError {
    /// The corpus directory failed to open or a chunk failed to decode.
    Corpus(CorpusError),
    /// Scratch-file I/O failed.
    Io(std::io::Error),
    /// Model-level validation failed (bad config, corpus/gazetteer shape
    /// mismatch).
    Model(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Corpus(e) => write!(f, "train corpus error: {e}"),
            TrainError::Io(e) => write!(f, "train scratch io error: {e}"),
            TrainError::Model(m) => write!(f, "train model error: {m}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<CorpusError> for TrainError {
    fn from(e: CorpusError) -> Self {
        TrainError::Corpus(e)
    }
}

impl From<std::io::Error> for TrainError {
    fn from(e: std::io::Error) -> Self {
        TrainError::Io(e)
    }
}

/// Trains on an on-disk corpus and freezes the posterior.
///
/// * `shards == 1`: streams the chunks into one in-memory dataset and
///   delegates to the exact sequential driver — byte-identical output to
///   [`Mlp::run_with_snapshot`] on the same data, by construction.
/// * `shards >= 2`: the out-of-core sharded path described in the module
///   docs. Deterministic for a fixed `(seed, shards, reconcile_every)`.
pub fn train_corpus(
    gaz: &Gazetteer,
    corpus_dir: &Path,
    config: &MlpConfig,
    shard_cfg: &ShardedTrainConfig,
) -> Result<PosteriorSnapshot, TrainError> {
    config.validate().map_err(|e| TrainError::Model(e.to_string()))?;
    let reader = CorpusReader::open(corpus_dir)?;
    let manifest = reader.manifest();
    if manifest.num_cities as usize != gaz.num_cities()
        || manifest.num_venues as usize != gaz.num_venues()
    {
        return Err(TrainError::Model(format!(
            "corpus was generated against a {}-city/{}-venue gazetteer, got {}/{}",
            manifest.num_cities,
            manifest.num_venues,
            gaz.num_cities(),
            gaz.num_venues()
        )));
    }

    if config.gibbs_em && shard_cfg.shards > 1 {
        return Err(TrainError::Model(
            "gibbs_em is not supported by the sharded out-of-core trainer; \
             use shards=1 or disable gibbs_em"
                .into(),
        ));
    }

    if shard_cfg.shards <= 1 {
        // Path A: exact in-memory chain over the streamed-in dataset.
        let data = reader.read_all()?;
        let mlp = Mlp::new(gaz, &data.dataset, config.clone()).map_err(TrainError::Model)?;
        let (_, snapshot) = mlp.run_with_snapshot();
        return Ok(snapshot);
    }

    ShardedTrainer::build(gaz, &reader, config, shard_cfg)?.run()
}

// ---------------------------------------------------------------------------
// Candidate profiles as CSR slabs
// ---------------------------------------------------------------------------

/// CSR-backed candidate lists and priors for every corpus user — the
/// out-of-core analogue of [`crate::candidacy::Candidacy`], built from
/// streaming passes and fed to the kernel through [`ProfileView`].
pub struct CandidateProfiles {
    candidates: Csr<CityId>,
    gammas: Csr<f64>,
    gamma_totals: Vec<f64>,
}

impl CandidateProfiles {
    /// Index of `city` inside user `u`'s candidate list, if present.
    #[inline]
    fn position(&self, u: UserId, city: CityId) -> Option<usize> {
        self.candidates.row(u.index()).binary_search(&city).ok()
    }

    /// Flat slot of `(u, c)` in the candidate slot space — shared by the
    /// count, accumulator, and delta arenas.
    #[inline]
    fn slot(&self, u: UserId, c: usize) -> usize {
        self.candidates.offsets()[u.index()] as usize + c
    }

    /// Total candidate entries (the slot-space size).
    fn num_slots(&self) -> usize {
        self.candidates.num_values()
    }

    fn num_users(&self) -> usize {
        self.candidates.num_rows()
    }

    /// Mean candidate-list length (the Sec. 4.3 pruning factor).
    pub fn mean_candidates(&self) -> f64 {
        if self.num_users() == 0 {
            return 0.0;
        }
        self.num_slots() as f64 / self.num_users() as f64
    }
}

impl ProfileView for CandidateProfiles {
    #[inline]
    fn candidates(&self, u: UserId) -> &[CityId] {
        self.candidates.row(u.index())
    }

    #[inline]
    fn gammas(&self, u: UserId) -> &[f64] {
        self.gammas.row(u.index())
    }

    #[inline]
    fn gamma_total(&self, u: UserId) -> f64 {
        self.gamma_totals[u.index()]
    }
}

// ---------------------------------------------------------------------------
// The shard count view
// ---------------------------------------------------------------------------

/// One shard's view of the collapsed counts during a super-sweep: frozen
/// global counts plus the shard's own delta slab (its updates are live to
/// itself, stale to everyone else), and its working `φ` clone.
struct ShardCounts<'a> {
    profiles: &'a CandidateProfiles,
    frozen: &'a [u32],
    frozen_totals: &'a [u32],
    delta: &'a [i32],
    delta_totals: &'a [i32],
    venues: &'a VenueCountStore,
}

impl CountView for ShardCounts<'_> {
    #[inline]
    fn user_count(&self, u: UserId, c: usize) -> f64 {
        let s = self.profiles.slot(u, c);
        (self.frozen[s] as i64 + self.delta[s] as i64) as f64
    }

    #[inline]
    fn user_total(&self, u: UserId) -> f64 {
        let i = u.index();
        (self.frozen_totals[i] as i64 + self.delta_totals[i] as i64) as f64
    }

    #[inline]
    fn venue_count(&self, l: CityId, v: VenueId) -> f64 {
        self.venues.get(l, v) as f64
    }

    #[inline]
    fn city_total(&self, l: CityId) -> f64 {
        self.venues.total(l) as f64
    }
}

// ---------------------------------------------------------------------------
// Per-shard assignments (spilled between super-sweeps)
// ---------------------------------------------------------------------------

/// One shard's assignment vectors, flat over its chunks in stream order.
#[derive(Default)]
struct ShardAssignments {
    mu: Vec<bool>,
    x: Vec<u16>,
    y: Vec<u16>,
    nu: Vec<bool>,
    z: Vec<u16>,
}

impl ShardAssignments {
    /// Serialises to the spill format (scratch file — no fsync needed;
    /// a crash simply restarts training).
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.mu.len() * 5 + self.nu.len() * 3);
        out.extend_from_slice(&(self.mu.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.nu.len() as u64).to_le_bytes());
        out.extend(self.mu.iter().map(|&b| b as u8));
        for &v in &self.x {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for &v in &self.y {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend(self.nu.iter().map(|&b| b as u8));
        for &v in &self.z {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    fn decode(raw: &[u8]) -> std::io::Result<Self> {
        let err = || std::io::Error::new(std::io::ErrorKind::InvalidData, "truncated spill file");
        let take = |at: &mut usize, n: usize| -> std::io::Result<Range<usize>> {
            let r = *at..*at + n;
            if r.end > raw.len() {
                return Err(err());
            }
            *at = r.end;
            Ok(r)
        };
        let mut at = 0;
        let s = u64::from_le_bytes(raw[take(&mut at, 8)?].try_into().unwrap()) as usize;
        let k = u64::from_le_bytes(raw[take(&mut at, 8)?].try_into().unwrap()) as usize;
        let mu = raw[take(&mut at, s)?].iter().map(|&b| b != 0).collect();
        let u16s = |r: Range<usize>| -> Vec<u16> {
            raw[r].chunks_exact(2).map(|c| u16::from_le_bytes([c[0], c[1]])).collect()
        };
        let x = u16s(take(&mut at, s * 2)?);
        let y = u16s(take(&mut at, s * 2)?);
        let nu = raw[take(&mut at, k)?].iter().map(|&b| b != 0).collect();
        let z = u16s(take(&mut at, k * 2)?);
        Ok(Self { mu, x, y, nu, z })
    }
}

// ---------------------------------------------------------------------------
// The trainer
// ---------------------------------------------------------------------------

struct ShardedTrainer<'g, 'r> {
    gaz: &'g Gazetteer,
    reader: &'r CorpusReader,
    config: MlpConfig,
    shards: Vec<Range<usize>>,
    reconcile_every: usize,
    scratch: PathBuf,
    profiles: CandidateProfiles,
    random: RandomModels,
    power_law: mlp_geo::PowerLaw,
    modes: Vec<Option<u32>>,
    // Global collapsed counts in the candidate slot space.
    counts: Vec<u32>,
    totals: Vec<u32>,
    venues: VenueCountStore,
    // Post-burn-in accumulators (one sample per reconciliation).
    acc: Vec<u32>,
    acc_samples: u32,
}

impl<'g, 'r> ShardedTrainer<'g, 'r> {
    /// Streaming passes 1–3: statistics, candidacy, power law, venue
    /// support, and init modes — never more than one chunk resident.
    fn build(
        gaz: &'g Gazetteer,
        reader: &'r CorpusReader,
        config: &MlpConfig,
        shard_cfg: &ShardedTrainConfig,
    ) -> Result<Self, TrainError> {
        let manifest = reader.manifest();
        let n = manifest.num_users as usize;
        let num_chunks = reader.num_chunks();
        let shards = chunk_ranges(num_chunks, shard_cfg.shards.min(num_chunks).max(1));
        let scratch =
            shard_cfg.scratch_dir.clone().unwrap_or_else(|| reader.dir().join("train-scratch"));

        // Pass 1: registered labels + venue-mention histogram.
        let mut registered: Vec<Option<CityId>> = Vec::with_capacity(n);
        let mut venue_mentions = vec![0u64; gaz.num_venues()];
        let mut num_edges = 0u64;
        for chunk in reader.chunks() {
            let chunk = chunk?;
            validate_chunk(gaz, &chunk, n)?;
            registered.extend_from_slice(&chunk.registered);
            num_edges += chunk.edges.len() as u64;
            for m in &chunk.mentions {
                venue_mentions[m.venue.index()] += 1;
            }
        }
        if registered.len() != n {
            return Err(TrainError::Model(format!(
                "corpus chunks cover {} users, manifest says {n}",
                registered.len()
            )));
        }
        let random = RandomModels::from_stream_stats(n as u64, num_edges, venue_mentions);

        // Pass 2: candidate sets (dedup on insert) + labeled city-pair
        // counts for the power-law fit. Mirrors `Candidacy::build` and
        // `fit_power_law_from_labels` rule for rule.
        let mut cand_sets: Vec<Vec<CityId>> = vec![Vec::new(); n];
        let insert = |sets: &mut Vec<Vec<CityId>>, u: UserId, c: CityId| {
            let set = &mut sets[u.index()];
            if let Err(pos) = set.binary_search(&c) {
                set.insert(pos, c);
            }
        };
        let mut pair_counts: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        for chunk in reader.chunks() {
            let chunk = chunk?;
            for (u, &reg) in chunk.user_range().zip(&chunk.registered) {
                if let Some(c) = reg {
                    insert(&mut cand_sets, UserId(u), c);
                }
            }
            if config.variant.uses_following() {
                for e in &chunk.edges {
                    if let Some(c) = registered[e.friend.index()] {
                        insert(&mut cand_sets, e.follower, c);
                    }
                    if let Some(c) = registered[e.follower.index()] {
                        insert(&mut cand_sets, e.friend, c);
                    }
                    if let (Some(a), Some(b)) =
                        (registered[e.follower.index()], registered[e.friend.index()])
                    {
                        *pair_counts.entry((a.0, b.0)).or_insert(0) += 1;
                    }
                }
            }
            if config.variant.uses_tweeting() {
                for m in &chunk.mentions {
                    for &c in gaz.resolve_venue(m.venue) {
                        insert(&mut cand_sets, m.user, c);
                    }
                }
            }
        }
        // Fallback pool for signal-free users (already sorted sets).
        let mut by_pop: Vec<CityId> = (0..gaz.num_cities() as u32).map(CityId).collect();
        by_pop.sort_by_key(|&c| std::cmp::Reverse(gaz.city(c).population));
        by_pop.truncate(config.fallback_popular_k.max(1));
        let mut fallback = by_pop;
        fallback.sort_unstable();
        for set in &mut cand_sets {
            if set.is_empty() {
                *set = fallback.clone();
            }
        }
        let candidates = Csr::from_rows(cand_sets.into_iter());

        // Priors: γ_{i,l} = τ·λ_{i,l} + boost·η_{i,l}.
        let mut gamma_totals = Vec::with_capacity(n);
        let gammas = Csr::from_rows((0..n).map(|u| {
            let cands = candidates.row(u);
            let mut g = vec![config.tau; cands.len()];
            if let Some(home) = registered[u] {
                if let Ok(pos) = cands.binary_search(&home) {
                    g[pos] += config.supervision_boost;
                }
            }
            gamma_totals.push(g.iter().sum::<f64>());
            g
        }));
        let profiles = CandidateProfiles { candidates, gammas, gamma_totals };

        // Power law: same histogram fit as the in-memory path, with the
        // labeled-pair distances replayed from the compact pair counts.
        let mut config = config.clone();
        if config.fit_power_law_from_data {
            let mut city_counts = vec![0u64; gaz.num_cities()];
            for r in registered.iter().flatten() {
                city_counts[r.index()] += 1;
            }
            let distances = pair_counts.iter().flat_map(|(&(a, b), &cnt)| {
                std::iter::repeat_n(gaz.distance(CityId(a), CityId(b)), cnt as usize)
            });
            if let Some(fit) = crate::fit::fit_from_histogram(gaz, &city_counts, distances, 50) {
                config.power_law = fit;
            }
        }
        let power_law = config.power_law;

        // Pass 3: venue support bitmap + init-mode scores (one pass; both
        // need the finished candidate sets).
        let words_per_city = gaz.num_venues().div_ceil(64);
        let mut support_bits = vec![0u64; gaz.num_cities() * words_per_city];
        let mut scores = vec![0.0f64; profiles.num_slots()];
        let mut has_signal = vec![false; n];
        for chunk in reader.chunks() {
            let chunk = chunk?;
            if config.variant.uses_tweeting() {
                for m in &chunk.mentions {
                    for &c in profiles.candidates(m.user) {
                        support_bits[c.index() * words_per_city + m.venue.index() / 64] |=
                            1u64 << (m.venue.index() % 64);
                    }
                    // Venue-resolution bonus of `compute_init_modes`.
                    for &city in gaz.resolve_venue(m.venue) {
                        if let Some(c) = profiles.position(m.user, city) {
                            has_signal[m.user.index()] = true;
                            scores[profiles.slot(m.user, c)] -= power_law.kernel(1.0).ln() - 0.5;
                        }
                    }
                }
            }
            if config.variant.uses_following() {
                for e in &chunk.edges {
                    for (user, other) in [(e.follower, e.friend), (e.friend, e.follower)] {
                        if let Some(anchor) = registered[other.index()] {
                            has_signal[user.index()] = true;
                            let base = profiles.slot(user, 0);
                            for (c, &city) in profiles.candidates(user).iter().enumerate() {
                                scores[base + c] +=
                                    power_law.kernel(gaz.distance(city, anchor)).ln();
                            }
                        }
                    }
                }
            }
        }
        let venues = VenueCountStore::build(
            gaz.num_cities(),
            gaz.num_venues(),
            (0..gaz.num_cities()).flat_map(|l| {
                let words = &support_bits[l * words_per_city..(l + 1) * words_per_city];
                words.iter().enumerate().flat_map(move |(w, &bits)| {
                    (0..64)
                        .filter(move |b| bits & (1 << b) != 0)
                        .map(move |b| (l as u32, (w * 64 + b) as u32))
                })
            }),
        );

        // Init modes, exactly as `compute_init_modes` resolves them.
        let modes: Vec<Option<u32>> = (0..n)
            .map(|u| {
                let user = UserId(u as u32);
                if let Some(reg) = registered[u] {
                    if let Some(pos) = profiles.position(user, reg) {
                        return Some(pos as u32);
                    }
                }
                if !has_signal[u] {
                    return None;
                }
                let base = profiles.slot(user, 0);
                let len = profiles.candidates(user).len();
                scores[base..base + len]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(c, _)| c as u32)
            })
            .collect();

        let num_slots = profiles.num_slots();
        Ok(Self {
            gaz,
            reader,
            config,
            shards,
            reconcile_every: shard_cfg.reconcile_every.max(1),
            scratch,
            profiles,
            random,
            power_law,
            modes,
            counts: vec![0; num_slots],
            totals: vec![0; n],
            venues,
            acc: vec![0; num_slots],
            acc_samples: 0,
        })
    }

    fn spill_path(&self, shard: usize) -> PathBuf {
        self.scratch.join(format!("shard-{shard:04}.spill"))
    }

    /// Initialises one shard's assignments (mode-biased, mirroring
    /// `GibbsSampler::init_assignments`), applies their counts to the
    /// global arenas, and spills them.
    fn init_shard(&mut self, shard: usize) -> Result<(), TrainError> {
        let mut rng =
            Pcg64::new(SplitMix64::derive(self.config.seed, PHASE_SHARD_INIT | shard as u64));
        let count_noisy = self.config.count_noisy_assignments;
        let mut asg = ShardAssignments::default();
        for ci in self.shards[shard].clone() {
            let chunk = self.reader.read_chunk(ci)?;
            let pos = |rng: &mut Pcg64, user: UserId, modes: &[Option<u32>]| -> usize {
                let len = self.profiles.candidates(user).len();
                match modes[user.index()] {
                    Some(mode) if rng.bernoulli(0.9) => mode as usize,
                    _ => rng.next_bounded(len),
                }
            };
            if self.config.variant.uses_following() {
                for e in &chunk.edges {
                    let mu = rng.bernoulli(self.config.rho_f);
                    let x = pos(&mut rng, e.follower, &self.modes);
                    let y = pos(&mut rng, e.friend, &self.modes);
                    if !mu || count_noisy {
                        self.counts[self.profiles.slot(e.follower, x)] += 1;
                        self.counts[self.profiles.slot(e.friend, y)] += 1;
                        self.totals[e.follower.index()] += 1;
                        self.totals[e.friend.index()] += 1;
                    }
                    asg.mu.push(mu);
                    asg.x.push(x as u16);
                    asg.y.push(y as u16);
                }
            } else {
                asg.mu.resize(asg.mu.len() + chunk.edges.len(), false);
                asg.x.resize(asg.x.len() + chunk.edges.len(), 0);
                asg.y.resize(asg.y.len() + chunk.edges.len(), 0);
            }
            if self.config.variant.uses_tweeting() {
                for m in &chunk.mentions {
                    let nu = rng.bernoulli(self.config.rho_t);
                    let z = pos(&mut rng, m.user, &self.modes);
                    if !nu || count_noisy {
                        self.counts[self.profiles.slot(m.user, z)] += 1;
                        self.totals[m.user.index()] += 1;
                    }
                    if !nu {
                        self.venues.add(self.profiles.candidates(m.user)[z], m.venue);
                    }
                    asg.nu.push(nu);
                    asg.z.push(z as u16);
                }
            } else {
                asg.nu.resize(asg.nu.len() + chunk.mentions.len(), false);
                asg.z.resize(asg.z.len() + chunk.mentions.len(), 0);
            }
        }
        std::fs::write(self.spill_path(shard), asg.encode())?;
        Ok(())
    }

    /// One shard's super-sweep: stream its chunks, load its assignments,
    /// run K local sweeps against frozen + own-delta counts, merge the
    /// deltas (the reconciliation), and spill the new assignments.
    #[allow(clippy::too_many_arguments)]
    fn sweep_shard(
        &mut self,
        shard: usize,
        super_sweep: u64,
        local_sweeps: usize,
        frozen: &[u32],
        frozen_totals: &[u32],
        frozen_venues: &VenueCountStore,
    ) -> Result<(), TrainError> {
        let chunks: Vec<CorpusChunk> = self.shards[shard]
            .clone()
            .map(|ci| self.reader.read_chunk(ci))
            .collect::<Result<_, _>>()?;
        let mut asg = ShardAssignments::decode(&std::fs::read(self.spill_path(shard))?)?;

        let mut delta = vec![0i32; self.profiles.num_slots()];
        let mut delta_totals = vec![0i32; self.profiles.num_users()];
        let mut working_venues = frozen_venues.clone();
        let view = SamplerView::<CandidateProfiles> {
            gaz: self.gaz,
            candidacy: &self.profiles,
            random: &self.random,
            config: &self.config,
            power_law: self.power_law,
        };
        let count_noisy = self.config.count_noisy_assignments;
        let mut buf = Vec::new();

        for local in 0..local_sweeps {
            let mut rng = Pcg64::new(SplitMix64::derive(
                self.config.seed,
                PHASE_SHARD_SWEEP ^ (super_sweep << 28) ^ ((shard as u64) << 14) ^ local as u64,
            ));
            let (mut es, mut ks) = (0usize, 0usize);
            for chunk in &chunks {
                if self.config.variant.uses_following() {
                    for e in &chunk.edges {
                        let s = es;
                        es += 1;
                        let (i, j) = (e.follower, e.friend);
                        let ci = self.profiles.candidates(i);
                        let cj = self.profiles.candidates(j);
                        let (old_mu, old_x, old_y) =
                            (asg.mu[s], asg.x[s] as usize, asg.y[s] as usize);
                        let counted = !old_mu || count_noisy;
                        let shard_counts = ShardCounts {
                            profiles: &self.profiles,
                            frozen,
                            frozen_totals,
                            delta: &delta,
                            delta_totals: &delta_totals,
                            venues: &working_venues,
                        };
                        let counts = EdgeExcluded::new(&shard_counts, counted, i, old_x, j, old_y);
                        let x_city = ci[old_x];
                        let y_city = cj[old_y];

                        let (w_based, w_noisy) = kernel::edge_selector_weights(
                            &view,
                            &counts,
                            Endpoint { user: i, pos: old_x, city: x_city },
                            Endpoint { user: j, pos: old_y, city: y_city },
                        );
                        let new_mu = rng.next_f64() * (w_based + w_noisy) < w_noisy;

                        kernel::edge_position_weights(
                            &view,
                            &counts,
                            i,
                            (!new_mu).then_some(y_city),
                            &mut buf,
                        );
                        let new_x = sample_categorical(&mut rng, &buf).expect("x weights positive");
                        let x_city = ci[new_x];

                        kernel::edge_position_weights(
                            &view,
                            &counts,
                            j,
                            (!new_mu).then_some(x_city),
                            &mut buf,
                        );
                        let new_y = sample_categorical(&mut rng, &buf).expect("y weights positive");

                        if counted {
                            delta[self.profiles.slot(i, old_x)] -= 1;
                            delta[self.profiles.slot(j, old_y)] -= 1;
                            delta_totals[i.index()] -= 1;
                            delta_totals[j.index()] -= 1;
                        }
                        if !new_mu || count_noisy {
                            delta[self.profiles.slot(i, new_x)] += 1;
                            delta[self.profiles.slot(j, new_y)] += 1;
                            delta_totals[i.index()] += 1;
                            delta_totals[j.index()] += 1;
                        }
                        asg.mu[s] = new_mu;
                        asg.x[s] = new_x as u16;
                        asg.y[s] = new_y as u16;
                    }
                } else {
                    es += chunk.edges.len();
                }

                if self.config.variant.uses_tweeting() {
                    for m in &chunk.mentions {
                        let k = ks;
                        ks += 1;
                        let (i, v) = (m.user, m.venue);
                        let ci = self.profiles.candidates(i);
                        let (old_nu, old_z) = (asg.nu[k], asg.z[k] as usize);
                        let counted = !old_nu || count_noisy;
                        let old_city = ci[old_z];
                        let shard_counts = ShardCounts {
                            profiles: &self.profiles,
                            frozen,
                            frozen_totals,
                            delta: &delta,
                            delta_totals: &delta_totals,
                            venues: &working_venues,
                        };
                        let counts = MentionExcluded::new(
                            &shard_counts,
                            counted,
                            !old_nu,
                            i,
                            old_z,
                            old_city,
                            v,
                        );

                        let (w_based, w_noisy) =
                            kernel::mention_selector_weights(&view, &counts, i, old_z, old_city, v);
                        let new_nu = rng.next_f64() * (w_based + w_noisy) < w_noisy;

                        kernel::mention_position_weights(
                            &view,
                            &counts,
                            i,
                            (!new_nu).then_some(v),
                            &mut buf,
                        );
                        let new_z = sample_categorical(&mut rng, &buf).expect("z weights positive");

                        if counted {
                            delta[self.profiles.slot(i, old_z)] -= 1;
                            delta_totals[i.index()] -= 1;
                        }
                        if !new_nu || count_noisy {
                            delta[self.profiles.slot(i, new_z)] += 1;
                            delta_totals[i.index()] += 1;
                        }
                        if !old_nu {
                            working_venues.remove(old_city, v);
                        }
                        if !new_nu {
                            working_venues.add(ci[new_z], v);
                        }
                        asg.nu[k] = new_nu;
                        asg.z[k] = new_z as u16;
                    }
                } else {
                    ks += chunk.mentions.len();
                }
            }
        }

        // Reconciliation: flat index-wise merge of this shard's deltas
        // into the global arenas.
        for (c, &d) in self.counts.iter_mut().zip(&delta) {
            *c = c.wrapping_add_signed(d);
        }
        for (t, &d) in self.totals.iter_mut().zip(&delta_totals) {
            *t = t.wrapping_add_signed(d);
        }
        self.venues.apply_diff(&working_venues, frozen_venues);

        std::fs::write(self.spill_path(shard), asg.encode())?;
        Ok(())
    }

    fn run(mut self) -> Result<PosteriorSnapshot, TrainError> {
        std::fs::create_dir_all(&self.scratch)?;
        for shard in 0..self.shards.len() {
            self.init_shard(shard)?;
        }

        let iterations = self.config.iterations;
        let burn_in = self.config.burn_in;
        let mut sweeps_done = 0usize;
        let mut super_sweep = 0u64;
        while sweeps_done < iterations {
            let k = self.reconcile_every.min(iterations - sweeps_done);
            let frozen = self.counts.clone();
            let frozen_totals = self.totals.clone();
            let frozen_venues = self.venues.clone();
            for shard in 0..self.shards.len() {
                self.sweep_shard(shard, super_sweep, k, &frozen, &frozen_totals, &frozen_venues)?;
            }
            sweeps_done += k;
            super_sweep += 1;
            if sweeps_done > burn_in {
                // One thinned posterior sample per reconciliation.
                for (a, &c) in self.acc.iter_mut().zip(&self.counts) {
                    *a += c;
                }
                self.acc_samples += 1;
            }
        }

        // Clean up the spill files (best effort — scratch only).
        for shard in 0..self.shards.len() {
            std::fs::remove_file(self.spill_path(shard)).ok();
        }
        std::fs::remove_dir(&self.scratch).ok();

        Ok(self.freeze())
    }

    /// Mean post-burn-in count for `(u, c)` — live counts when no sample
    /// was accumulated yet (same fallback as `SamplerState`).
    fn mean_count(&self, u: UserId, c: usize) -> f64 {
        let s = self.profiles.slot(u, c);
        if self.acc_samples == 0 {
            self.counts[s] as f64
        } else {
            self.acc[s] as f64 / self.acc_samples as f64
        }
    }

    /// Freezes the trained posterior — field for field what
    /// [`PosteriorSnapshot::freeze`] extracts from a trained sampler.
    fn freeze(&self) -> PosteriorSnapshot {
        let n = self.profiles.num_users();
        let users = UserArena::from_users((0..n).map(|u| {
            let user = UserId(u as u32);
            let candidates = self.profiles.candidates(user).to_vec();
            let gammas = self.profiles.gammas(user).to_vec();
            let gamma_total = self.profiles.gamma_total(user);
            let mean_counts: Vec<f64> =
                (0..candidates.len()).map(|c| self.mean_count(user, c)).collect();
            let mean_total: f64 = mean_counts.iter().sum();
            // θ̂ argmax (Eq. 10) with the sampler's tie-break: higher
            // probability first, then lower city id.
            let total = gamma_total + mean_total;
            let home = candidates
                .iter()
                .zip(&mean_counts)
                .zip(&gammas)
                .map(|((&c, &m), &g)| (c, (m + g) / total))
                .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
                .map(|(c, _)| c)
                .expect("candidate lists are non-empty");
            UserPosterior { home, gamma_total, candidates, gammas, mean_counts, mean_total }
        }));

        let venues = VenueArena::from_rows(
            (0..self.gaz.num_cities())
                .map(|l| self.venues.row(CityId(l as u32)).map(|(v, c)| (v, c as f64))),
        );

        PosteriorSnapshot {
            variant: self.config.variant,
            count_noisy_assignments: self.config.count_noisy_assignments,
            tau: self.config.tau,
            delta: self.config.delta,
            rho_f: self.config.rho_f,
            rho_t: self.config.rho_t,
            power_law: self.power_law,
            follow_prob: self.random.follow_prob(),
            venue_probs: (0..self.gaz.num_venues())
                .map(|v| self.random.venue_prob(VenueId(v as u32)))
                .collect(),
            num_cities: self.gaz.num_cities() as u32,
            num_venues: self.gaz.num_venues() as u32,
            gaz_fingerprint: gazetteer_fingerprint(self.gaz),
            users,
            venues,
        }
    }
}

/// Cheap per-chunk shape validation (the full-dataset `validate` is the
/// in-memory path's luxury).
fn validate_chunk(
    gaz: &Gazetteer,
    chunk: &CorpusChunk,
    num_users: usize,
) -> Result<(), TrainError> {
    let bad = |m: String| Err(TrainError::Model(m));
    for r in chunk.registered.iter().flatten() {
        if r.index() >= gaz.num_cities() {
            return bad(format!("registered city {} out of range", r.0));
        }
    }
    for e in &chunk.edges {
        if e.friend.index() >= num_users {
            return bad(format!("edge friend {} out of range", e.friend.0));
        }
    }
    for m in &chunk.mentions {
        if m.venue.index() >= gaz.num_venues() {
            return bad(format!("mention venue {} out of range", m.venue.0));
        }
    }
    Ok(())
}
