//! The sequential collapsed Gibbs sweep driver (paper Sec. 4.5).
//!
//! One sweep resamples, for every following relationship, the model
//! selector `μ_s` and both location assignments `(x_s, y_s)`, and for every
//! tweeting relationship the selector `ν_k` and assignment `z_k`, each from
//! its conditional posterior given everything else. The conditional weight
//! math itself (Eqs. 5–9) lives in [`crate::kernel`] and is shared verbatim
//! with the chunked parallel driver; this module owns only the *driver*
//! concerns — exclude-current count bookkeeping, the RNG stream, and the
//! sweep loop.

use crate::candidacy::Candidacy;
use crate::config::MlpConfig;
use crate::kernel::{self, SamplerView};
use crate::random_models::RandomModels;
use crate::state::SamplerState;
use mlp_gazetteer::{CityId, Gazetteer, VenueId};
use mlp_geo::PowerLaw;
use mlp_sampling::{sample_categorical, Pcg64, SplitMix64};
use mlp_social::{Dataset, UserId};

/// The sampler: owns the mutable state and RNG, borrows everything static.
pub struct GibbsSampler<'a> {
    gaz: &'a Gazetteer,
    dataset: &'a Dataset,
    candidacy: &'a Candidacy,
    random: &'a RandomModels,
    config: &'a MlpConfig,
    /// Current power law; mutated by the Gibbs-EM outer loop.
    pub power_law: PowerLaw,
    /// Assignment + count state.
    pub state: SamplerState,
    rng: Pcg64,
    weight_buf: Vec<f64>,
}

/// Counts of assignment variables that changed during one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepChanges {
    /// Changed edge variables (μ, x, or y differs), out of S.
    pub edges: usize,
    /// Changed mention variables (ν or z differs), out of K.
    pub mentions: usize,
}

impl<'a> GibbsSampler<'a> {
    /// Creates the sampler and randomises the initial assignments.
    pub fn new(
        gaz: &'a Gazetteer,
        dataset: &'a Dataset,
        candidacy: &'a Candidacy,
        random: &'a RandomModels,
        config: &'a MlpConfig,
    ) -> Self {
        let mut sampler = Self {
            gaz,
            dataset,
            candidacy,
            random,
            config,
            power_law: config.power_law,
            state: SamplerState::new(dataset, candidacy, gaz.num_cities(), gaz.num_venues()),
            rng: Pcg64::new(SplitMix64::derive(config.seed, 0x9B5)),
            weight_buf: Vec::new(),
        };
        sampler.init_assignments();
        sampler
    }

    /// Observation-based initialisation (the paper credits its fast, ~14
    /// iteration convergence to initialising "each user's candidate
    /// locations based on our observations", Sec. 5.1).
    ///
    /// The collapsed chain is a Pólya urn per user: once a city accumulates
    /// counts, single-variable Gibbs moves cannot cross to a competing city
    /// even when the distance evidence favours it. So we start every user at
    /// their *conditional mode*: labeled users at the registered city, and
    /// unlabeled users at the candidate maximising the aggregate distance
    /// log-likelihood against their labeled neighbors (plus a venue-
    /// resolution bonus), which is where the all-in posterior mode lives.
    fn init_assignments(&mut self) {
        let modes = self.compute_init_modes();
        let pos = |sampler: &mut Self, user: UserId| -> usize {
            let len = sampler.candidacy.candidates(user).len();
            match modes[user.index()] {
                Some(mode) if sampler.rng.bernoulli(0.9) => mode,
                _ => sampler.rng.next_bounded(len),
            }
        };
        // Loops are gated by variant (not just skipped in the sweep) so the
        // RNG stream for one observation type is independent of the other's
        // presence — a TweetingOnly run must be bit-identical whether or not
        // the dataset carries edges.
        if self.config.variant.uses_following() {
            for s in 0..self.dataset.num_edges() {
                let e = self.dataset.edges[s];
                self.state.mu[s] = self.rng.bernoulli(self.config.rho_f);
                self.state.x[s] = pos(self, e.follower) as u16;
                self.state.y[s] = pos(self, e.friend) as u16;
            }
        }
        if self.config.variant.uses_tweeting() {
            for k in 0..self.dataset.num_mentions() {
                let m = self.dataset.mentions[k];
                self.state.nu[k] = self.rng.bernoulli(self.config.rho_t);
                self.state.z[k] = pos(self, m.user) as u16;
            }
        }
        self.state.rebuild_counts(
            self.dataset,
            self.candidacy,
            self.config.count_noisy_assignments,
            self.config.variant.uses_following(),
            self.config.variant.uses_tweeting(),
        );
    }

    /// Per-user initial mode: the registered city when labeled; otherwise
    /// `argmax_l Σ_edges ln kernel(d(l, anchor)) + Σ_mentions resolution
    /// bonus`, where anchors are the labeled cities of edge counterparts.
    fn compute_init_modes(&self) -> Vec<Option<usize>> {
        let n = self.dataset.num_users();
        let mut scores: Vec<Vec<f64>> =
            (0..n).map(|u| vec![0.0; self.candidacy.candidates(UserId(u as u32)).len()]).collect();
        let mut has_signal = vec![false; n];
        if self.config.variant.uses_following() {
            for e in &self.dataset.edges {
                for (user, other) in [(e.follower, e.friend), (e.friend, e.follower)] {
                    if let Some(anchor) = self.dataset.registered[other.index()] {
                        has_signal[user.index()] = true;
                        let cands = self.candidacy.candidates(user);
                        for (c, &city) in cands.iter().enumerate() {
                            scores[user.index()][c] +=
                                self.power_law.kernel(self.gaz.distance(city, anchor)).ln();
                        }
                    }
                }
            }
        }
        if self.config.variant.uses_tweeting() {
            // A candidate the venue resolves to gets the same bonus one
            // nearby neighbor would contribute.
            for m in &self.dataset.mentions {
                for &city in self.gaz.resolve_venue(m.venue) {
                    if let Some(c) = self.candidacy.position(m.user, city) {
                        has_signal[m.user.index()] = true;
                        scores[m.user.index()][c] -= self.power_law.kernel(1.0).ln() - 0.5;
                    }
                }
            }
        }
        (0..n)
            .map(|u| {
                let user = UserId(u as u32);
                if let Some(reg) = self.dataset.registered[u] {
                    if let Some(pos) = self.candidacy.position(user, reg) {
                        return Some(pos);
                    }
                }
                if !has_signal[u] {
                    return None;
                }
                scores[u].iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(c, _)| c)
            })
            .collect()
    }

    /// The read-only view the kernel evaluates against. Outlives any borrow
    /// of `self` (it copies the sampler's own `'a` references), so drivers
    /// can hold it while mutating state, RNG, and weight buffers.
    pub fn view(&self) -> SamplerView<'a> {
        SamplerView {
            gaz: self.gaz,
            candidacy: self.candidacy,
            random: self.random,
            config: self.config,
            power_law: self.power_law,
        }
    }

    /// Venue term `(φ_{l,v} + δ) / (Σφ_l + δ|V|)` against live counts.
    #[inline]
    fn venue_term(&self, l: CityId, v: VenueId) -> f64 {
        kernel::venue_term(&self.view(), &self.state, l, v)
    }

    /// One full Gibbs sweep over all relationships.
    pub fn sweep(&mut self) -> SweepChanges {
        let mut changes = SweepChanges::default();
        if self.config.variant.uses_following() {
            for s in 0..self.dataset.num_edges() {
                if self.resample_edge(s) {
                    changes.edges += 1;
                }
            }
        }
        if self.config.variant.uses_tweeting() {
            for k in 0..self.dataset.num_mentions() {
                if self.resample_mention(k) {
                    changes.mentions += 1;
                }
            }
        }
        changes
    }

    /// Resamples `(μ_s, x_s, y_s)`; returns whether anything changed.
    fn resample_edge(&mut self, s: usize) -> bool {
        let e = self.dataset.edges[s];
        let (i, j) = (e.follower, e.friend);
        let ci = self.candidacy.candidates(i);
        let cj = self.candidacy.candidates(j);
        let (old_mu, old_x, old_y) = (self.state.mu[s], self.state.x[s], self.state.y[s]);

        // Remove the current contribution (exclude-current counts).
        if !old_mu || self.config.count_noisy_assignments {
            self.state.remove_user(i, old_x as usize);
            self.state.remove_user(j, old_y as usize);
        }

        let x_city = ci[old_x as usize];
        let y_city = cj[old_y as usize];
        let view = self.view();

        // --- μ_s | rest (Eq. 5) ---
        let (w_based, w_noisy) = kernel::edge_selector_weights(
            &view,
            &self.state,
            kernel::Endpoint { user: i, pos: old_x as usize, city: x_city },
            kernel::Endpoint { user: j, pos: old_y as usize, city: y_city },
        );
        let new_mu = self.rng.next_f64() * (w_based + w_noisy) < w_noisy;

        // --- x_s | rest (Eq. 7) ---
        kernel::edge_position_weights(
            &view,
            &self.state,
            i,
            (!new_mu).then_some(y_city),
            &mut self.weight_buf,
        );
        let new_x = sample_categorical(&mut self.rng, &self.weight_buf)
            .expect("x weights are positive (γ > 0)") as u16;
        let x_city = ci[new_x as usize];

        // --- y_s | rest (Eq. 8) ---
        kernel::edge_position_weights(
            &view,
            &self.state,
            j,
            (!new_mu).then_some(x_city),
            &mut self.weight_buf,
        );
        let new_y = sample_categorical(&mut self.rng, &self.weight_buf)
            .expect("y weights are positive (γ > 0)") as u16;

        // Commit.
        if !new_mu || self.config.count_noisy_assignments {
            self.state.add_user(i, new_x as usize);
            self.state.add_user(j, new_y as usize);
        }
        self.state.mu[s] = new_mu;
        self.state.x[s] = new_x;
        self.state.y[s] = new_y;
        new_mu != old_mu || new_x != old_x || new_y != old_y
    }

    /// Resamples `(ν_k, z_k)`; returns whether anything changed.
    fn resample_mention(&mut self, k: usize) -> bool {
        let m = self.dataset.mentions[k];
        let (i, v) = (m.user, m.venue);
        let ci = self.candidacy.candidates(i);
        let (old_nu, old_z) = (self.state.nu[k], self.state.z[k]);
        let old_city = ci[old_z as usize];

        if !old_nu || self.config.count_noisy_assignments {
            self.state.remove_user(i, old_z as usize);
        }
        if !old_nu {
            self.state.remove_venue(old_city, v);
        }

        // --- ν_k | rest (Eq. 6) ---
        let view = self.view();
        let (w_based, w_noisy) =
            kernel::mention_selector_weights(&view, &self.state, i, old_z as usize, old_city, v);
        let new_nu = self.rng.next_f64() * (w_based + w_noisy) < w_noisy;

        // --- z_k | rest (Eq. 9) ---
        kernel::mention_position_weights(
            &view,
            &self.state,
            i,
            (!new_nu).then_some(v),
            &mut self.weight_buf,
        );
        let new_z = sample_categorical(&mut self.rng, &self.weight_buf)
            .expect("z weights are positive (γ > 0)") as u16;
        let new_city = ci[new_z as usize];

        if !new_nu || self.config.count_noisy_assignments {
            self.state.add_user(i, new_z as usize);
        }
        if !new_nu {
            self.state.add_venue(new_city, v);
        }
        self.state.nu[k] = new_nu;
        self.state.z[k] = new_z;
        new_nu != old_nu || new_z != old_z
    }

    /// θ̂_i per Eq. 10, over user `u`'s candidates, using post-burn-in mean
    /// counts: `p(l|θ_i) = (ϕ̄_{i,l} + γ_{i,l}) / (ϕ̄_i + Σγ_i)`.
    pub fn estimate_theta(&self, u: UserId) -> Vec<(CityId, f64)> {
        let cands = self.candidacy.candidates(u);
        let gammas = self.candidacy.gammas(u);
        let mut probs: Vec<(CityId, f64)> = Vec::with_capacity(cands.len());
        let mut total = self.candidacy.gamma_total(u);
        for c in 0..cands.len() {
            total += self.state.mean_user_count(u, c);
        }
        for (c, &city) in cands.iter().enumerate() {
            let p = (self.state.mean_user_count(u, c) + gammas[c]) / total;
            probs.push((city, p));
        }
        probs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        probs
    }

    /// A joint log-likelihood proxy under current assignments (monitoring
    /// only; collapsed likelihoods are not directly comparable across
    /// selector configurations).
    pub fn log_likelihood_proxy(&self) -> f64 {
        let mut ll = 0.0;
        if self.config.variant.uses_following() {
            for (s, e) in self.dataset.edges.iter().enumerate() {
                if self.state.mu[s] {
                    ll += (self.config.rho_f * self.random.follow_prob()).ln();
                } else {
                    let x = self.candidacy.candidates(e.follower)[self.state.x[s] as usize];
                    let y = self.candidacy.candidates(e.friend)[self.state.y[s] as usize];
                    ll += ((1.0 - self.config.rho_f)
                        * self.power_law.eval(self.gaz.distance(x, y)))
                    .ln();
                }
            }
        }
        if self.config.variant.uses_tweeting() {
            for (k, m) in self.dataset.mentions.iter().enumerate() {
                if self.state.nu[k] {
                    ll += (self.config.rho_t * self.random.venue_prob(m.venue)).ln();
                } else {
                    let z = self.candidacy.candidates(m.user)[self.state.z[k] as usize];
                    ll += ((1.0 - self.config.rho_t) * self.venue_term(z, m.venue)).ln();
                }
            }
        }
        ll
    }

    /// The per-user initial modes (diagnostic / ablation use).
    pub fn init_modes_public(&self) -> Vec<Option<usize>> {
        self.compute_init_modes()
    }

    /// Read access to the RNG for helpers that extend the sampler.
    pub fn rng_mut(&mut self) -> &mut Pcg64 {
        &mut self.rng
    }

    /// The gazetteer this sampler runs against.
    pub fn gazetteer(&self) -> &'a Gazetteer {
        self.gaz
    }

    /// The candidacy structure in use.
    pub fn candidacy(&self) -> &'a Candidacy {
        self.candidacy
    }

    /// The dataset being fitted.
    pub fn dataset(&self) -> &'a Dataset {
        self.dataset
    }

    /// The model configuration.
    pub fn config(&self) -> &'a MlpConfig {
        self.config
    }

    /// The learned random models.
    pub fn random_models(&self) -> &'a RandomModels {
        self.random
    }

    /// Venue term exposed for MAP extraction in [`crate::model`].
    pub fn venue_term_public(&self, l: CityId, v: VenueId) -> f64 {
        self.venue_term(l, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_social::{Adjacency, Generator, GeneratorConfig};

    fn setup(
        num_users: usize,
        seed: u64,
        config: MlpConfig,
    ) -> (Gazetteer, Dataset, MlpConfig, mlp_social::GroundTruth) {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(&gaz, GeneratorConfig { num_users, seed, ..Default::default() })
            .generate();
        (gaz, data.dataset, config, data.truth)
    }

    fn run_sweeps(
        gaz: &Gazetteer,
        dataset: &Dataset,
        config: &MlpConfig,
        sweeps: usize,
    ) -> Vec<SweepChanges> {
        let adj = Adjacency::build(dataset);
        let cand = Candidacy::build(gaz, dataset, &adj, config);
        let random = RandomModels::learn(dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(gaz, dataset, &cand, &random, config);
        (0..sweeps).map(|_| sampler.sweep()).collect()
    }

    #[test]
    fn counts_stay_consistent_across_sweeps() {
        let (gaz, dataset, config, _) = setup(150, 3, MlpConfig::default());
        let adj = Adjacency::build(&dataset);
        let cand = Candidacy::build(&gaz, &dataset, &adj, &config);
        let random = RandomModels::learn(&dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &dataset, &cand, &random, &config);
        for _ in 0..3 {
            sampler.sweep();
            sampler
                .state
                .check_consistency(&dataset, &cand, false, true, true)
                .expect("incremental counts must equal a rebuild");
        }
    }

    #[test]
    fn counts_stay_consistent_with_count_noisy() {
        let config = MlpConfig { count_noisy_assignments: true, ..Default::default() };
        let (gaz, dataset, config, _) = setup(120, 5, config);
        let adj = Adjacency::build(&dataset);
        let cand = Candidacy::build(&gaz, &dataset, &adj, &config);
        let random = RandomModels::learn(&dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &dataset, &cand, &random, &config);
        for _ in 0..3 {
            sampler.sweep();
            sampler
                .state
                .check_consistency(&dataset, &cand, true, true, true)
                .expect("count-noisy bookkeeping must also be exact");
        }
    }

    #[test]
    fn sweeps_settle_down() {
        let (gaz, dataset, config, _) = setup(300, 7, MlpConfig::default());
        let changes = run_sweeps(&gaz, &dataset, &config, 12);
        let early = changes[0].edges + changes[0].mentions;
        let late = changes[11].edges + changes[11].mentions;
        assert!((late as f64) < 0.8 * early as f64, "no settling: first {early}, last {late}");
    }

    #[test]
    fn theta_is_a_distribution_sorted_desc() {
        let (gaz, dataset, config, _) = setup(100, 11, MlpConfig::default());
        let adj = Adjacency::build(&dataset);
        let cand = Candidacy::build(&gaz, &dataset, &adj, &config);
        let random = RandomModels::learn(&dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &dataset, &cand, &random, &config);
        for _ in 0..5 {
            sampler.sweep();
            sampler.state.accumulate();
        }
        for u in 0..dataset.num_users() {
            let theta = sampler.estimate_theta(UserId(u as u32));
            let sum: f64 = theta.iter().map(|&(_, p)| p).sum();
            assert!((sum - 1.0).abs() < 1e-9, "user {u} theta sums to {sum}");
            for w in theta.windows(2) {
                assert!(w[0].1 >= w[1].1, "user {u} theta not sorted");
            }
        }
    }

    #[test]
    fn labeled_user_theta_concentrates_on_registered_city() {
        let (gaz, dataset, config, _) = setup(200, 13, MlpConfig::default());
        let adj = Adjacency::build(&dataset);
        let cand = Candidacy::build(&gaz, &dataset, &adj, &config);
        let random = RandomModels::learn(&dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &dataset, &cand, &random, &config);
        for _ in 0..8 {
            sampler.sweep();
        }
        // For most labeled users the top θ city should be the registered one
        // (supervision boost + their own location-based relationships).
        let mut hits = 0;
        let mut total = 0;
        for u in 0..dataset.num_users() {
            if let Some(home) = dataset.registered[u] {
                total += 1;
                let theta = sampler.estimate_theta(UserId(u as u32));
                if theta[0].0 == home {
                    hits += 1;
                }
            }
        }
        assert!(
            hits as f64 / total as f64 > 0.8,
            "only {hits}/{total} labeled users recover their registered city"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (gaz, dataset, config, _) = setup(100, 17, MlpConfig::default());
        let run = |cfg: &MlpConfig| {
            let adj = Adjacency::build(&dataset);
            let cand = Candidacy::build(&gaz, &dataset, &adj, cfg);
            let random = RandomModels::learn(&dataset, gaz.num_venues());
            let mut s = GibbsSampler::new(&gaz, &dataset, &cand, &random, cfg);
            for _ in 0..4 {
                s.sweep();
            }
            (s.state.mu.clone(), s.state.x.clone(), s.state.z.clone())
        };
        assert_eq!(run(&config), run(&config));
        let other = MlpConfig { seed: 99, ..config.clone() };
        assert_ne!(run(&config), run(&other));
    }

    #[test]
    fn following_only_never_touches_mentions() {
        let (gaz, dataset, config, _) = setup(100, 19, MlpConfig::following_only());
        let changes = run_sweeps(&gaz, &dataset, &config, 3);
        for c in changes {
            assert_eq!(c.mentions, 0);
        }
    }

    #[test]
    fn tweeting_only_never_touches_edges() {
        let (gaz, dataset, config, _) = setup(100, 23, MlpConfig::tweeting_only());
        let changes = run_sweeps(&gaz, &dataset, &config, 3);
        for c in changes {
            assert_eq!(c.edges, 0);
        }
    }

    #[test]
    fn log_likelihood_proxy_improves() {
        let (gaz, dataset, config, _) = setup(200, 29, MlpConfig::default());
        let adj = Adjacency::build(&dataset);
        let cand = Candidacy::build(&gaz, &dataset, &adj, &config);
        let random = RandomModels::learn(&dataset, gaz.num_venues());
        let mut sampler = GibbsSampler::new(&gaz, &dataset, &cand, &random, &config);
        let before = sampler.log_likelihood_proxy();
        for _ in 0..8 {
            sampler.sweep();
        }
        let after = sampler.log_likelihood_proxy();
        assert!(after > before, "ll proxy did not improve: {before} -> {after}");
    }
}
