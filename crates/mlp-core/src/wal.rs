//! Durable write-ahead delta log and atomic artifact persistence.
//!
//! A [`crate::engine::ServingEngine`] opened from an artifact file keeps
//! a sidecar log (`<artifact>.wal`) of every committed
//! [`SnapshotDelta`]: each refresh appends one CRC-framed record and
//! `fsync`s it *before* the delta is applied in memory and the new epoch
//! is published. The fsync is the commit point — a record fully on disk
//! is committed, everything after a torn write is not. Recovery on open
//! ([`DeltaWal::recover`]) replays the committed prefix past the base
//! artifact and truncates the torn tail; it never trusts, and never
//! parses, bytes that fail their frame or checksum.
//!
//! The base artifact itself is only ever replaced atomically
//! ([`write_atomic`]: temp file + `sync_all` + rename + directory
//! fsync), so the pair on disk is always one of:
//!
//! * old base + old log — the checkpoint never happened;
//! * new base + old log — detected by the fingerprint in the log header
//!   and the stale log is set aside, because the new base already
//!   contains everything the log held;
//! * new base + fresh log — the checkpoint completed.
//!
//! No crash point leaves a state that decodes to something the process
//! never served.
//!
//! ## On-disk layout (WAL v1)
//!
//! ```text
//! header   [u32 magic "MLPW"][u16 version = 1][u16 reserved = 0]
//!          [u64 base artifact fingerprint (FNV-1a over the file bytes)]
//! record   [u32 magic "MLPR"][u64 payload len][u32 IEEE CRC32 of payload]
//!          [payload — a SnapshotDelta record payload, format v4]
//! ```
//!
//! All integers little-endian, records repeated until end of file.

use crate::snapshot::{crc32, SnapshotDelta, SnapshotError};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// WAL file magic: `"MLPW"` little-endian.
pub const WAL_MAGIC: u32 = 0x4D4C_5057;
/// Per-record magic: `"MLPR"` little-endian.
pub const RECORD_MAGIC: u32 = 0x4D4C_5052;
const WAL_VERSION: u16 = 1;
/// Header: magic + version + reserved + base fingerprint.
pub const WAL_HEADER_LEN: u64 = 4 + 2 + 2 + 8;
/// Per-record framing ahead of the payload: magic + length + CRC.
pub const RECORD_FRAME_LEN: u64 = 4 + 8 + 4;

/// Stable FNV-1a hash of raw artifact bytes. The WAL header stores the
/// fingerprint of the base artifact it extends, so a log can never be
/// replayed onto a different base (e.g. after a checkpoint replaced the
/// artifact but crashed before resetting the log).
pub fn artifact_fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Errors raised by the write-ahead log.
#[derive(Debug)]
#[non_exhaustive]
pub enum WalError {
    /// Filesystem failure (open, append, fsync, rename).
    Io(std::io::Error),
    /// A CRC-valid record whose payload fails delta validation — the
    /// frame survived the crash intact, so this is writer-side
    /// corruption, not a torn tail, and is never silently dropped.
    Record(SnapshotError),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Record(e) => write!(f, "wal record invalid: {e}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Record(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<SnapshotError> for WalError {
    fn from(e: SnapshotError) -> Self {
        WalError::Record(e)
    }
}

/// What [`DeltaWal::recover`] found on disk.
#[derive(Debug, Default)]
pub struct WalRecovery {
    /// Committed deltas recovered from the log, in append order.
    pub deltas: Vec<SnapshotDelta>,
    /// Bytes of torn tail truncated (a record the crash cut short).
    pub torn_bytes: u64,
    /// Where a log bound to a *different* base artifact was set aside
    /// (`<wal>.stale`). Happens when a checkpoint replaced the base but
    /// died before resetting the log; the new base already contains the
    /// stale log's deltas, so nothing is lost — and nothing is deleted.
    pub stale_moved_to: Option<PathBuf>,
    /// Whether no log existed and a fresh one was created.
    pub created: bool,
}

/// An open, append-only write-ahead delta log.
///
/// One log extends exactly one base artifact (bound by fingerprint in
/// the header). [`Self::append`] is the durability point: it returns
/// only after the framed record is `fsync`'d, so a publish that follows
/// can never outlive the bytes that reproduce it.
#[derive(Debug)]
pub struct DeltaWal {
    file: File,
    path: PathBuf,
    len: u64,
}

impl DeltaWal {
    /// The conventional sidecar path: `<artifact>.wal` alongside it.
    pub fn sidecar_path(artifact: &Path) -> PathBuf {
        let mut name = artifact.file_name().unwrap_or_default().to_os_string();
        name.push(".wal");
        artifact.with_file_name(name)
    }

    /// Creates a fresh log at `path` bound to `base_fingerprint`,
    /// truncating whatever was there. The header is fsync'd before
    /// returning.
    pub fn create(path: &Path, base_fingerprint: u64) -> Result<Self, WalError> {
        let mut file = OpenOptions::new().write(true).create(true).truncate(true).open(path)?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
        header.extend_from_slice(&WAL_MAGIC.to_le_bytes());
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        header.extend_from_slice(&0u16.to_le_bytes());
        header.extend_from_slice(&base_fingerprint.to_le_bytes());
        file.write_all(&header)?;
        file.sync_all()?;
        sync_parent_dir(path)?;
        Ok(Self { file, path: path.to_path_buf(), len: WAL_HEADER_LEN })
    }

    /// Opens (or creates) the log at `path` for the base artifact with
    /// `base_fingerprint`, recovering its committed prefix.
    ///
    /// * No file: a fresh log is created (`created` in the report).
    /// * Header mismatch — wrong magic/version, torn header, or a
    ///   fingerprint for a different base: the whole file is moved aside
    ///   to `<path>.stale` (never deleted) and a fresh log is created.
    /// * Record scan: frames are parsed until end of file; the first
    ///   framing or checksum failure marks the torn tail, which is
    ///   truncated and fsync'd away. A CRC-*valid* record that fails
    ///   delta parsing is a typed [`WalError::Record`] — that is not a
    ///   crash artifact and must not be silently dropped.
    pub fn recover(path: &Path, base_fingerprint: u64) -> Result<(Self, WalRecovery), WalError> {
        let raw = match std::fs::read(path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let wal = Self::create(path, base_fingerprint)?;
                return Ok((wal, WalRecovery { created: true, ..WalRecovery::default() }));
            }
            Err(e) => return Err(WalError::Io(e)),
        };

        if !header_matches(&raw, base_fingerprint) {
            let stale = stale_sibling(path);
            std::fs::rename(path, &stale)?;
            sync_parent_dir(path)?;
            let wal = Self::create(path, base_fingerprint)?;
            return Ok((
                wal,
                WalRecovery {
                    stale_moved_to: Some(stale),
                    created: true,
                    ..WalRecovery::default()
                },
            ));
        }

        let mut deltas = Vec::new();
        let mut offset = WAL_HEADER_LEN as usize;
        loop {
            let rest = &raw[offset..];
            if rest.is_empty() {
                break;
            }
            let Some(payload_len) = parse_frame(rest) else { break };
            let frame = RECORD_FRAME_LEN as usize;
            let payload = &rest[frame..frame + payload_len];
            let delta = SnapshotDelta::decode_record_payload(bytes::Bytes::from(payload.to_vec()))?;
            deltas.push(delta);
            offset += frame + payload_len;
        }

        let torn_bytes = (raw.len() - offset) as u64;
        if torn_bytes > 0 {
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(offset as u64)?;
            file.sync_all()?;
        }
        let file = OpenOptions::new().append(true).open(path)?;
        let wal = Self { file, path: path.to_path_buf(), len: offset as u64 };
        Ok((wal, WalRecovery { deltas, torn_bytes, ..WalRecovery::default() }))
    }

    /// Appends one committed delta and `fsync`s it. Once this returns,
    /// the delta survives any crash; until it returns, the delta was
    /// never committed.
    pub fn append(&mut self, delta: &SnapshotDelta) -> Result<(), WalError> {
        let payload = delta.encode_record_payload()?;
        let mut frame = Vec::with_capacity(RECORD_FRAME_LEN as usize + payload.len());
        frame.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        frame.extend_from_slice(&crc32(payload.as_slice()).to_le_bytes());
        frame.extend_from_slice(payload.as_slice());
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Resets the log to an empty one bound to `new_base_fingerprint` —
    /// the post-checkpoint step, after the refreshed base artifact is
    /// atomically in place. Built as a temp file and renamed over the
    /// old log, so a crash mid-reset leaves either the old log (stale,
    /// set aside on next open) or the new one; never a torn header.
    pub fn reset(&mut self, new_base_fingerprint: u64) -> Result<(), WalError> {
        let tmp = tmp_sibling(&self.path);
        let fresh = Self::create(&tmp, new_base_fingerprint)?;
        std::fs::rename(&tmp, &self.path)?;
        sync_parent_dir(&self.path)?;
        self.file = OpenOptions::new().append(true).open(&self.path)?;
        self.len = fresh.len;
        Ok(())
    }

    /// Current log size in bytes (header included) — the compaction
    /// trigger input.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records (header only).
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_HEADER_LEN
    }

    /// The log's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Ages out stale set-asides: every `<log>.stale*` sibling except
    /// the most recently modified is deleted. A successful checkpoint
    /// obsoletes the older ones — their deltas are folded into a base at
    /// least two checkpoints back — while the newest is kept as a
    /// post-mortem artifact of the most recent crash window.
    /// Best-effort: IO trouble here must not fail the checkpoint that
    /// triggered the sweep.
    pub fn age_stale_siblings(&self) {
        let Some(dir) = self.path.parent() else { return };
        let Some(name) = self.path.file_name().and_then(|n| n.to_str()) else { return };
        let prefix = format!("{name}.stale");
        let Ok(entries) = std::fs::read_dir(dir) else { return };
        let mut stales: Vec<(std::time::SystemTime, PathBuf)> = Vec::new();
        for entry in entries.flatten() {
            let fname = entry.file_name();
            let Some(fname) = fname.to_str() else { continue };
            if fname == prefix || fname.starts_with(&format!("{prefix}.")) {
                let modified = entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
                stales.push((modified, entry.path()));
            }
        }
        if stales.len() <= 1 {
            return;
        }
        stales.sort();
        for (_, old) in &stales[..stales.len() - 1] {
            let _ = std::fs::remove_file(old);
        }
    }
}

/// What a read-only pass over a sidecar log found — see [`inspect_log`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalInfo {
    /// Intact CRC-framed records (the committed prefix).
    pub records: u64,
    /// Total file length in bytes.
    pub bytes: u64,
    /// Base-artifact fingerprint the log is bound to.
    pub fingerprint: u64,
    /// Unparseable tail bytes past the committed prefix (torn write, or
    /// the whole file when even the header is damaged).
    pub torn_bytes: u64,
}

/// Read-only sidecar inspection: counts the committed records without
/// truncating torn tails or setting stale logs aside — unlike
/// [`DeltaWal::recover`], the file is untouched. `Ok(None)` when no log
/// exists at `path`.
pub fn inspect_log(path: &Path) -> std::io::Result<Option<WalInfo>> {
    let raw = match std::fs::read(path) {
        Ok(raw) => raw,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let bytes = raw.len() as u64;
    if raw.len() < WAL_HEADER_LEN as usize
        || u32::from_le_bytes(raw[0..4].try_into().unwrap()) != WAL_MAGIC
        || u16::from_le_bytes(raw[4..6].try_into().unwrap()) != WAL_VERSION
    {
        return Ok(Some(WalInfo { records: 0, bytes, fingerprint: 0, torn_bytes: bytes }));
    }
    let fingerprint = u64::from_le_bytes(raw[8..16].try_into().unwrap());
    let mut pos = WAL_HEADER_LEN as usize;
    let mut records = 0u64;
    while let Some(len) = parse_frame(&raw[pos..]) {
        records += 1;
        pos += RECORD_FRAME_LEN as usize + len;
    }
    Ok(Some(WalInfo { records, bytes, fingerprint, torn_bytes: (raw.len() - pos) as u64 }))
}

/// A set-aside name for a stale log that never clobbers an earlier
/// set-aside: `<path>.stale`, then `<path>.stale.1`, `.stale.2`, …
fn stale_sibling(path: &Path) -> PathBuf {
    let mut base = path.as_os_str().to_os_string();
    base.push(".stale");
    let first = PathBuf::from(&base);
    if !first.exists() {
        return first;
    }
    for n in 1u64.. {
        let mut numbered = base.clone();
        numbered.push(format!(".{n}"));
        let candidate = PathBuf::from(numbered);
        if !candidate.exists() {
            return candidate;
        }
    }
    unreachable!("ran out of stale-log names")
}

/// Whether `raw` starts with a valid WAL header bound to `fingerprint`.
fn header_matches(raw: &[u8], fingerprint: u64) -> bool {
    if raw.len() < WAL_HEADER_LEN as usize {
        return false;
    }
    let magic = u32::from_le_bytes(raw[0..4].try_into().unwrap());
    let version = u16::from_le_bytes(raw[4..6].try_into().unwrap());
    let fp = u64::from_le_bytes(raw[8..16].try_into().unwrap());
    magic == WAL_MAGIC && version == WAL_VERSION && fp == fingerprint
}

/// Parses one record frame at the head of `rest`; returns the payload
/// length when the frame and its checksummed payload are fully present
/// and intact, `None` for anything torn.
fn parse_frame(rest: &[u8]) -> Option<usize> {
    let frame = RECORD_FRAME_LEN as usize;
    if rest.len() < frame {
        return None;
    }
    let magic = u32::from_le_bytes(rest[0..4].try_into().unwrap());
    if magic != RECORD_MAGIC {
        return None;
    }
    let len = u64::from_le_bytes(rest[4..12].try_into().unwrap());
    let len = usize::try_from(len).ok()?;
    let crc = u32::from_le_bytes(rest[12..16].try_into().unwrap());
    let payload = rest.get(frame..frame.checked_add(len)?)?;
    if crc32(payload) != crc {
        return None;
    }
    Some(len)
}

// Atomic artifact replacement lives at the bottom of the crate graph so
// the streaming corpus writer can share it; re-exported here so existing
// `crate::wal::write_atomic` / `mlp::core::write_atomic` callers keep
// working unchanged.
pub use mlp_social::atomic::write_atomic;
use mlp_social::atomic::{sync_parent_dir, tmp_sibling};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::UserPosterior;
    use mlp_gazetteer::{CityId, VenueId};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mlp_wal_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_delta(base_users: u32, seed: u32) -> SnapshotDelta {
        let mut d = SnapshotDelta::new(base_users);
        d.push_user(UserPosterior {
            candidates: vec![CityId(seed % 3), CityId(seed % 3 + 4)],
            gammas: vec![0.5, 0.25],
            mean_counts: vec![2.0 + seed as f64, 1.0],
            mean_total: 3.0 + seed as f64,
            gamma_total: 0.75,
            home: CityId(seed % 3),
        });
        d.add_venue_weights(&[(CityId(seed % 3), VenueId(seed % 5), 1.5)]);
        d
    }

    #[test]
    fn append_then_recover_round_trips() {
        let dir = tmp_dir("round_trip");
        let path = dir.join("model.mlps.wal");
        let fp = artifact_fingerprint(b"base artifact bytes");
        let mut wal = DeltaWal::create(&path, fp).unwrap();
        let (d1, d2) = (sample_delta(10, 1), sample_delta(11, 2));
        wal.append(&d1).unwrap();
        wal.append(&d2).unwrap();
        let len = wal.len();
        drop(wal);

        let (reopened, rec) = DeltaWal::recover(&path, fp).unwrap();
        assert_eq!(rec.deltas, vec![d1, d2]);
        assert_eq!(rec.torn_bytes, 0);
        assert!(rec.stale_moved_to.is_none() && !rec.created);
        assert_eq!(reopened.len(), len);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_not_trusted() {
        let dir = tmp_dir("torn");
        let path = dir.join("model.mlps.wal");
        let fp = artifact_fingerprint(b"base");
        let mut wal = DeltaWal::create(&path, fp).unwrap();
        let d = sample_delta(5, 3);
        wal.append(&d).unwrap();
        let committed_len = wal.len();
        drop(wal);

        // A crash mid-append: a full frame header promising more bytes
        // than ever hit the disk.
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
        raw.extend_from_slice(&(1_000_000u64).to_le_bytes());
        raw.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        raw.extend_from_slice(&[0xAB; 37]);
        std::fs::write(&path, &raw).unwrap();

        let (reopened, rec) = DeltaWal::recover(&path, fp).unwrap();
        assert_eq!(rec.deltas, vec![d]);
        assert_eq!(rec.torn_bytes, 16 + 37);
        assert_eq!(reopened.len(), committed_len);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), committed_len);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn mismatched_base_is_set_aside_never_replayed() {
        let dir = tmp_dir("stale");
        let path = dir.join("model.mlps.wal");
        let mut wal = DeltaWal::create(&path, artifact_fingerprint(b"old base")).unwrap();
        wal.append(&sample_delta(7, 4)).unwrap();
        drop(wal);

        let new_fp = artifact_fingerprint(b"new base after checkpoint");
        let (wal, rec) = DeltaWal::recover(&path, new_fp).unwrap();
        assert!(rec.deltas.is_empty(), "a stale log must never replay");
        let stale = rec.stale_moved_to.expect("stale log set aside");
        assert!(stale.exists(), "stale log preserved for forensics");
        assert!(wal.is_empty());
        drop(wal);

        // The fresh log recovers cleanly against the new base.
        let (_, rec) = DeltaWal::recover(&path, new_fp).unwrap();
        assert!(rec.deltas.is_empty() && rec.stale_moved_to.is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn repeated_set_asides_never_clobber_and_age_out_on_checkpoint() {
        let dir = tmp_dir("stale_age");
        let path = dir.join("model.mlps.wal");

        // Two successive mismatched recoveries: the second set-aside must
        // pick a fresh sibling name instead of clobbering the first.
        let mut wal = DeltaWal::create(&path, artifact_fingerprint(b"base a")).unwrap();
        wal.append(&sample_delta(1, 1)).unwrap();
        drop(wal);
        let (wal, rec) = DeltaWal::recover(&path, artifact_fingerprint(b"base b")).unwrap();
        let first = rec.stale_moved_to.expect("first set-aside");
        drop(wal);
        // Re-bind the fresh log to yet another base to force a second set-aside.
        let mut raw = std::fs::read(&path).unwrap();
        raw[8..16].copy_from_slice(&artifact_fingerprint(b"base c").to_le_bytes());
        std::fs::write(&path, raw).unwrap();
        let (wal, rec) = DeltaWal::recover(&path, artifact_fingerprint(b"base d")).unwrap();
        let second = rec.stale_moved_to.expect("second set-aside");
        assert_ne!(first, second, "set-asides must not clobber each other");
        assert!(first.exists() && second.exists());

        // Make the second sibling strictly newer, then age: exactly the
        // newest survives the checkpoint sweep.
        let now = std::time::SystemTime::now() + std::time::Duration::from_secs(5);
        let f = std::fs::OpenOptions::new().write(true).open(&second).unwrap();
        f.set_modified(now).unwrap();
        drop(f);
        wal.age_stale_siblings();
        assert!(!first.exists(), "older stale log aged out");
        assert!(second.exists(), "newest stale log kept for forensics");
        assert!(path.exists(), "live log untouched by the sweep");

        // A second sweep with one survivor is a no-op.
        wal.age_stale_siblings();
        assert!(second.exists());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reset_rebinds_to_the_new_base() {
        let dir = tmp_dir("reset");
        let path = dir.join("model.mlps.wal");
        let old_fp = artifact_fingerprint(b"old");
        let new_fp = artifact_fingerprint(b"new");
        let mut wal = DeltaWal::create(&path, old_fp).unwrap();
        wal.append(&sample_delta(3, 5)).unwrap();
        wal.reset(new_fp).unwrap();
        assert!(wal.is_empty());
        wal.append(&sample_delta(4, 6)).unwrap();
        drop(wal);

        let (_, rec) = DeltaWal::recover(&path, new_fp).unwrap();
        assert_eq!(rec.deltas.len(), 1, "only the post-reset record survives");
        assert_eq!(rec.deltas[0].num_new_users(), 1);
        std::fs::remove_dir_all(dir).ok();
    }
}
