//! Assignment state and collapsed count bookkeeping.
//!
//! The collapsed Gibbs sampler integrates out `θ_{1:N}` and `ψ_{1:L}` and
//! maintains only:
//!
//! * per-edge state `(μ_s, x_s, y_s)` and per-mention state `(ν_k, z_k)` —
//!   assignments are stored as *indices into the owner's candidate list*,
//!   which keeps them `u16` and makes the count vectors dense;
//! * `ϕ_{i,l}` — how often city `l` appears among user `i`'s location-based
//!   assignments (follower side, friend side, and tweet side all count,
//!   exactly as the paper's ϕ aggregates "u_i's location assignments");
//! * `φ_{l,v}` — how often venue `v` was tweeted from city `l` among
//!   location-based mentions.
//!
//! Counts are columnar: the `ϕ` rows live in one flat row-major [`Csr`]
//! arena (one slab for the whole corpus, not a `Vec` per user), and the
//! `φ` rows in a [`VenueCountStore`] — a CSR over the fixed support of
//! reachable `(city, venue)` pairs. Both give the hot path contiguous
//! memory, deterministic venue-id-ordered row iteration without sorting or
//! allocating, and a stable flat *slot* space so a parallel sweep can merge
//! per-thread deltas by index ([`crate::parallel`]).
//!
//! Post-burn-in sweeps are accumulated separately so the final `θ̂` (Eq. 10)
//! averages over the posterior instead of trusting one sample.

use crate::candidacy::Candidacy;
use crate::count_store::{VenueCountStore, VenueRow};
use mlp_gazetteer::{CityId, VenueId};
use mlp_social::{Csr, Dataset, UserId};

/// Mutable sampler state.
#[derive(Debug, Clone)]
pub struct SamplerState {
    /// μ_s — true if edge `s` is currently assigned to the random model.
    pub mu: Vec<bool>,
    /// x_s — follower-side assignment (index into follower's candidates).
    pub x: Vec<u16>,
    /// y_s — friend-side assignment (index into friend's candidates).
    pub y: Vec<u16>,
    /// ν_k — true if mention `k` is currently assigned to the random model.
    pub nu: Vec<bool>,
    /// z_k — user-side assignment (index into user's candidates).
    pub z: Vec<u16>,

    /// ϕ rows, one per user, aligned with the candidate lists — a flat
    /// row-major arena.
    user_counts: Csr<u32>,
    /// Σ_l ϕ_{i,l}.
    user_totals: Vec<u32>,
    /// φ_{l,·} — CSR sparse counts over the reachable support.
    venue_counts: VenueCountStore,

    /// Post-burn-in accumulation of `user_counts` (same row layout).
    acc_user_counts: Csr<u64>,
    /// Number of accumulated sweeps.
    acc_sweeps: u32,
}

impl SamplerState {
    /// Creates all-zero state sized for the dataset; assignments start at
    /// candidate index 0 and are expected to be randomised by the sampler's
    /// `init` before the first sweep.
    ///
    /// The venue-count support is derived here: a mention of venue `v` by
    /// user `i` can only ever be assigned to a city in `i`'s candidate
    /// list, so `(candidate, v)` pairs over all mentions cover every cell
    /// the sampler can touch.
    pub fn new(
        dataset: &Dataset,
        candidacy: &Candidacy,
        num_cities: usize,
        num_venues: usize,
    ) -> Self {
        let n = dataset.num_users();
        let row_lens = || (0..n).map(|u| candidacy.candidates(UserId(u as u32)).len());
        let support = dataset.mentions.iter().flat_map(|m| {
            candidacy.candidates(m.user).iter().map(move |&city| (city.0, m.venue.0))
        });
        Self {
            mu: vec![false; dataset.num_edges()],
            x: vec![0; dataset.num_edges()],
            y: vec![0; dataset.num_edges()],
            nu: vec![false; dataset.num_mentions()],
            z: vec![0; dataset.num_mentions()],
            user_counts: Csr::with_row_lens(row_lens()),
            user_totals: vec![0; n],
            venue_counts: VenueCountStore::build(num_cities, num_venues, support),
            acc_user_counts: Csr::with_row_lens(row_lens()),
            acc_sweeps: 0,
        }
    }

    /// ϕ count of user `u` at candidate index `c`.
    #[inline]
    pub fn user_count(&self, u: UserId, c: usize) -> u32 {
        self.user_counts.row(u.index())[c]
    }

    /// The whole ϕ row of user `u`.
    #[inline]
    pub fn user_count_row(&self, u: UserId) -> &[u32] {
        self.user_counts.row(u.index())
    }

    /// Σ_l ϕ_{u,l}.
    #[inline]
    pub fn user_total(&self, u: UserId) -> u32 {
        self.user_totals[u.index()]
    }

    /// φ_{l,v}.
    #[inline]
    pub fn venue_count(&self, l: CityId, v: VenueId) -> u32 {
        self.venue_counts.get(l, v)
    }

    /// Σ_v φ_{l,v}.
    #[inline]
    pub fn city_total(&self, l: CityId) -> u32 {
        self.venue_counts.total(l)
    }

    /// The non-zero `(venue, count)` entries of city `l`'s φ row, ascending
    /// by venue id — the deterministic order snapshots serialise. A
    /// borrowed view over the CSR arena: no allocation, no sort.
    #[inline]
    pub fn venue_count_row(&self, l: CityId) -> VenueRow<'_> {
        self.venue_counts.row(l)
    }

    /// Adds one assignment of user `u` to candidate index `c`.
    #[inline]
    pub fn add_user(&mut self, u: UserId, c: usize) {
        self.user_counts.row_mut(u.index())[c] += 1;
        self.user_totals[u.index()] += 1;
    }

    /// Removes one assignment of user `u` from candidate index `c`.
    #[inline]
    pub fn remove_user(&mut self, u: UserId, c: usize) {
        let cell = &mut self.user_counts.row_mut(u.index())[c];
        debug_assert!(*cell > 0, "count underflow");
        *cell -= 1;
        self.user_totals[u.index()] -= 1;
    }

    /// Adds one venue token `v` at city `l`.
    #[inline]
    pub fn add_venue(&mut self, l: CityId, v: VenueId) {
        self.venue_counts.add(l, v);
    }

    /// Removes one venue token `v` from city `l`.
    #[inline]
    pub fn remove_venue(&mut self, l: CityId, v: VenueId) {
        self.venue_counts.remove(l, v);
    }

    // --- Flat slot space for parallel delta merges -----------------------

    /// Size of the flat ϕ arena (codomain of [`Self::user_slot`]).
    pub fn num_user_slots(&self) -> usize {
        self.user_counts.num_values()
    }

    /// Flat arena index of `(u, c)`.
    #[inline]
    pub fn user_slot(&self, u: UserId, c: usize) -> usize {
        self.user_counts.slot(u.index(), c)
    }

    /// Size of the flat φ slot space (codomain of [`Self::venue_slot`]).
    pub fn num_venue_slots(&self) -> usize {
        self.venue_counts.num_slots()
    }

    /// Flat slot of `(l, v)`; panics outside the reachable support.
    #[inline]
    pub fn venue_slot(&self, l: CityId, v: VenueId) -> usize {
        self.venue_counts.slot_index(l, v)
    }

    /// Applies per-slot ϕ deltas and per-user total deltas by index.
    pub fn apply_user_delta(&mut self, slots: &[i32], totals: &[i32]) {
        debug_assert_eq!(slots.len(), self.num_user_slots());
        debug_assert_eq!(totals.len(), self.user_totals.len());
        for (c, &d) in self.user_counts.values_mut().iter_mut().zip(slots) {
            *c = c.wrapping_add_signed(d);
        }
        for (t, &d) in self.user_totals.iter_mut().zip(totals) {
            *t = t.wrapping_add_signed(d);
        }
    }

    /// Applies per-slot φ deltas and per-city total deltas by index.
    pub fn apply_venue_delta(&mut self, slots: &[i32], totals: &[i32]) {
        self.venue_counts.apply_delta(slots, totals);
    }

    /// Folds the current sweep's user counts into the accumulator.
    pub fn accumulate(&mut self) {
        for (a, &c) in self.acc_user_counts.values_mut().iter_mut().zip(self.user_counts.values()) {
            *a += c as u64;
        }
        self.acc_sweeps += 1;
    }

    /// Number of accumulated sweeps.
    pub fn accumulated_sweeps(&self) -> u32 {
        self.acc_sweeps
    }

    /// Mean accumulated count for user `u` at candidate `c` — falls back to
    /// the live count when nothing has been accumulated yet.
    #[inline]
    pub fn mean_user_count(&self, u: UserId, c: usize) -> f64 {
        if self.acc_sweeps == 0 {
            self.user_counts.row(u.index())[c] as f64
        } else {
            self.acc_user_counts.row(u.index())[c] as f64 / self.acc_sweeps as f64
        }
    }

    /// Rebuilds all counts from the current assignment vectors — used after
    /// initialisation randomises the assignments.
    pub fn rebuild_counts(
        &mut self,
        dataset: &Dataset,
        candidacy: &Candidacy,
        count_noisy: bool,
        uses_following: bool,
        uses_tweeting: bool,
    ) {
        self.user_counts.values_mut().fill(0);
        self.user_totals.fill(0);
        self.venue_counts.clear();

        if uses_following {
            for (s, e) in dataset.edges.iter().enumerate() {
                if !self.mu[s] || count_noisy {
                    self.add_user(e.follower, self.x[s] as usize);
                    self.add_user(e.friend, self.y[s] as usize);
                }
            }
        }
        if uses_tweeting {
            for (k, m) in dataset.mentions.iter().enumerate() {
                if !self.nu[k] || count_noisy {
                    self.add_user(m.user, self.z[k] as usize);
                }
                if !self.nu[k] {
                    let city = candidacy.candidates(m.user)[self.z[k] as usize];
                    self.add_venue(city, m.venue);
                }
            }
        }
    }

    /// Verifies that counts equal a fresh rebuild — the core invariant the
    /// incremental add/remove updates must preserve. Test-only (O(S + K)).
    pub fn check_consistency(
        &self,
        dataset: &Dataset,
        candidacy: &Candidacy,
        count_noisy: bool,
        uses_following: bool,
        uses_tweeting: bool,
    ) -> Result<(), String> {
        let mut fresh = self.clone();
        fresh.rebuild_counts(dataset, candidacy, count_noisy, uses_following, uses_tweeting);
        if fresh.user_counts != self.user_counts {
            return Err("user counts diverged from assignments".into());
        }
        if fresh.user_totals != self.user_totals {
            return Err("user totals diverged".into());
        }
        if fresh.venue_counts != self.venue_counts {
            return Err("venue counts (or city totals) diverged".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MlpConfig;
    use mlp_gazetteer::Gazetteer;
    use mlp_social::{Adjacency, FollowEdge, TweetMention};

    fn fixture() -> (Gazetteer, Dataset, Candidacy) {
        let gaz = Gazetteer::us_cities();
        let austin = gaz.city_by_name_state("austin", "TX").unwrap();
        let la = gaz.city_by_name_state("los angeles", "CA").unwrap();
        let mut d = Dataset::new(3);
        d.registered[0] = Some(austin);
        d.registered[1] = Some(la);
        d.edges.push(FollowEdge { follower: UserId(0), friend: UserId(1) });
        d.edges.push(FollowEdge { follower: UserId(2), friend: UserId(0) });
        let v = gaz.venue_by_name("austin").unwrap();
        d.mentions.push(TweetMention { user: UserId(0), venue: v });
        let adj = Adjacency::build(&d);
        let cand = Candidacy::build(&gaz, &d, &adj, &MlpConfig::default());
        (gaz, d, cand)
    }

    fn state_for(gaz: &Gazetteer, d: &Dataset, cand: &Candidacy) -> SamplerState {
        SamplerState::new(d, cand, gaz.num_cities(), gaz.num_venues())
    }

    #[test]
    fn add_remove_round_trip() {
        let (gaz, d, cand) = fixture();
        let mut st = state_for(&gaz, &d, &cand);
        let u = UserId(0);
        st.add_user(u, 1);
        st.add_user(u, 1);
        st.add_user(u, 0);
        assert_eq!(st.user_count(u, 1), 2);
        assert_eq!(st.user_total(u), 3);
        st.remove_user(u, 1);
        assert_eq!(st.user_count(u, 1), 1);
        assert_eq!(st.user_total(u), 2);
    }

    #[test]
    fn venue_counts_round_trip() {
        let (gaz, d, cand) = fixture();
        let mut st = state_for(&gaz, &d, &cand);
        let austin = gaz.city_by_name_state("austin", "TX").unwrap();
        let v = gaz.venue_by_name("austin").unwrap();
        st.add_venue(austin, v);
        st.add_venue(austin, v);
        assert_eq!(st.venue_count(austin, v), 2);
        assert_eq!(st.city_total(austin), 2);
        assert_eq!(st.venue_count_row(austin).collect::<Vec<_>>(), vec![(v.0, 2)]);
        st.remove_venue(austin, v);
        st.remove_venue(austin, v);
        assert_eq!(st.venue_count(austin, v), 0);
        assert_eq!(st.city_total(austin), 0);
        assert!(st.venue_count_row(austin).next().is_none());
    }

    #[test]
    #[should_panic(expected = "removing venue that was never added")]
    fn removing_absent_venue_panics() {
        let (gaz, d, cand) = fixture();
        let mut st = state_for(&gaz, &d, &cand);
        st.remove_venue(CityId(0), VenueId(0));
    }

    #[test]
    fn rebuild_matches_manual_bookkeeping() {
        let (gaz, d, cand) = fixture();
        let mut st = state_for(&gaz, &d, &cand);
        // Assignments: edge 0 location-based, edge 1 noisy, mention 0 based.
        st.mu = vec![false, true];
        st.x = vec![0, 0];
        st.y = vec![1, 0];
        st.nu = vec![false];
        st.z = vec![0];
        st.rebuild_counts(&d, &cand, false, true, true);
        assert!(st.check_consistency(&d, &cand, false, true, true).is_ok());
        // Edge 0 contributes follower 0 @0 and friend 1 @1; noisy edge 1
        // contributes nothing; mention adds user 0 @0 again.
        assert_eq!(st.user_count(UserId(0), 0), 2);
        assert_eq!(st.user_count(UserId(1), 1), 1);
        assert_eq!(st.user_total(UserId(2)), 0);
        let city0 = cand.candidates(UserId(0))[0];
        assert_eq!(st.city_total(city0), 1);
    }

    #[test]
    fn count_noisy_flag_includes_noisy_assignments() {
        let (gaz, d, cand) = fixture();
        let mut st = state_for(&gaz, &d, &cand);
        st.mu = vec![true, true];
        st.nu = vec![true];
        st.rebuild_counts(&d, &cand, true, true, true);
        // Every edge endpoint + mention contributes despite noise flags.
        assert_eq!(st.user_total(UserId(0)), 3); // follower of e0, friend of e1, mention
        assert_eq!(st.user_total(UserId(1)), 1);
        assert_eq!(st.user_total(UserId(2)), 1);
        // But venue counts still exclude noisy mentions.
        let city0 = cand.candidates(UserId(0))[0];
        assert_eq!(st.city_total(city0), 0);
    }

    #[test]
    fn accumulation_averages_sweeps() {
        let (gaz, d, cand) = fixture();
        let mut st = state_for(&gaz, &d, &cand);
        let u = UserId(0);
        st.add_user(u, 0);
        st.accumulate();
        st.add_user(u, 0);
        st.accumulate();
        assert_eq!(st.accumulated_sweeps(), 2);
        assert!((st.mean_user_count(u, 0) - 1.5).abs() < 1e-12);
        // Fallback to live counts before any accumulation.
        let st2 = state_for(&gaz, &d, &cand);
        assert_eq!(st2.mean_user_count(u, 0), 0.0);
    }

    #[test]
    fn consistency_detects_corruption() {
        let (gaz, d, cand) = fixture();
        let mut st = state_for(&gaz, &d, &cand);
        st.rebuild_counts(&d, &cand, false, true, true);
        st.add_user(UserId(0), 0); // corrupt
        assert!(st.check_consistency(&d, &cand, false, true, true).is_err());
    }

    #[test]
    fn flat_deltas_reproduce_incremental_updates() {
        let (gaz, d, cand) = fixture();
        let mut incremental = state_for(&gaz, &d, &cand);
        let mut merged = incremental.clone();
        let u = UserId(0);
        let city = cand.candidates(u)[0];
        let v = d.mentions[0].venue;

        incremental.add_user(u, 0);
        incremental.add_user(u, 1);
        incremental.remove_user(u, 0);
        incremental.add_venue(city, v);

        let mut user_slots = vec![0i32; merged.num_user_slots()];
        let mut user_totals = vec![0i32; d.num_users()];
        user_slots[merged.user_slot(u, 0)] += 1;
        user_slots[merged.user_slot(u, 1)] += 1;
        user_slots[merged.user_slot(u, 0)] -= 1;
        user_totals[u.index()] += 1;
        let mut venue_slots = vec![0i32; merged.num_venue_slots()];
        let mut city_totals = vec![0i32; gaz.num_cities()];
        venue_slots[merged.venue_slot(city, v)] += 1;
        city_totals[city.index()] += 1;
        merged.apply_user_delta(&user_slots, &user_totals);
        merged.apply_venue_delta(&venue_slots, &city_totals);

        assert_eq!(merged.user_count(u, 0), incremental.user_count(u, 0));
        assert_eq!(merged.user_count(u, 1), incremental.user_count(u, 1));
        assert_eq!(merged.user_total(u), incremental.user_total(u));
        assert_eq!(merged.venue_count(city, v), incremental.venue_count(city, v));
        assert_eq!(merged.city_total(city), incremental.city_total(city));
    }
}
