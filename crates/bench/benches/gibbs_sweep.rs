//! Criterion benches for the Gibbs sampler: sweep throughput vs dataset
//! size, sequential vs parallel, and end-to-end inference cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlp_core::{parallel::parallel_sweep, Candidacy, Mlp, MlpConfig, RandomModels};
use mlp_gazetteer::Gazetteer;
use mlp_social::{Adjacency, GeneratedData, Generator, GeneratorConfig};

fn generate(gaz: &Gazetteer, users: usize) -> GeneratedData {
    Generator::new(gaz, GeneratorConfig { num_users: users, seed: 99, ..Default::default() })
        .generate()
}

fn bench_sweep(c: &mut Criterion) {
    let gaz = Gazetteer::us_cities();
    let mut group = c.benchmark_group("gibbs_sweep");
    group.sample_size(10);
    for users in [500usize, 2_000] {
        let data = generate(&gaz, users);
        let config = MlpConfig::default();
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        group.bench_with_input(BenchmarkId::new("sequential", users), &users, |b, _| {
            let mut sampler =
                mlp_core::sampler::GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
            b.iter(|| sampler.sweep())
        });
    }
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let gaz = Gazetteer::us_cities();
    let data = generate(&gaz, 2_000);
    let mut group = c.benchmark_group("parallel_sweep_2000_users");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        let config = MlpConfig { threads, ..Default::default() };
        let adj = Adjacency::build(&data.dataset);
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        let random = RandomModels::learn(&data.dataset, gaz.num_venues());
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            let mut sampler =
                mlp_core::sampler::GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
            let mut sweep = 0u64;
            b.iter(|| {
                let r = parallel_sweep(&mut sampler, sweep);
                sweep += 1;
                r
            })
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let gaz = Gazetteer::us_cities();
    let data = generate(&gaz, 500);
    let mut group = c.benchmark_group("mlp_end_to_end_500_users");
    group.sample_size(10);
    group.bench_function("12_iterations", |b| {
        let config = MlpConfig { iterations: 12, burn_in: 6, ..Default::default() };
        b.iter(|| Mlp::new(&gaz, &data.dataset, config.clone()).unwrap().run())
    });
    group.finish();
}

criterion_group!(benches, bench_sweep, bench_parallel, bench_end_to_end);
criterion_main!(benches);
