//! Criterion benches quantifying the cost side of the paper's design
//! choices: candidacy pruning (Sec. 4.3 claims it is what makes inference
//! tractable) and the noisy-mixture machinery.

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_core::{Candidacy, MlpConfig, RandomModels};
use mlp_gazetteer::Gazetteer;
use mlp_social::{Adjacency, Generator, GeneratorConfig};

fn bench_candidacy_pruning(c: &mut Criterion) {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: 500, seed: 7, ..Default::default() })
            .generate();
    let adj = Adjacency::build(&data.dataset);
    let random = RandomModels::learn(&data.dataset, gaz.num_venues());

    let mut group = c.benchmark_group("sweep_candidacy");
    group.sample_size(10);
    for (name, pruning) in [("pruned", true), ("full_domain", false)] {
        let config = MlpConfig { candidacy_pruning: pruning, ..Default::default() };
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        group.bench_function(name, |b| {
            let mut sampler =
                mlp_core::sampler::GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
            b.iter(|| sampler.sweep())
        });
    }
    group.finish();
}

fn bench_count_noisy(c: &mut Criterion) {
    let gaz = Gazetteer::us_cities();
    let data =
        Generator::new(&gaz, GeneratorConfig { num_users: 500, seed: 7, ..Default::default() })
            .generate();
    let adj = Adjacency::build(&data.dataset);
    let random = RandomModels::learn(&data.dataset, gaz.num_venues());

    let mut group = c.benchmark_group("sweep_count_noisy");
    group.sample_size(10);
    for (name, flag) in [("generative_semantics", false), ("literal_eqs_7_9", true)] {
        let config = MlpConfig { count_noisy_assignments: flag, ..Default::default() };
        let cand = Candidacy::build(&gaz, &data.dataset, &adj, &config);
        group.bench_function(name, |b| {
            let mut sampler =
                mlp_core::sampler::GibbsSampler::new(&gaz, &data.dataset, &cand, &random, &config);
            b.iter(|| sampler.sweep())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_candidacy_pruning, bench_count_noisy);
criterion_main!(benches);
