//! Criterion microbenches for the substrate crates: distance kernels,
//! alias sampling, spatial-grid queries, venue extraction, and the
//! synthetic generator.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mlp_gazetteer::{Gazetteer, SynthConfig, VenueExtractor};
use mlp_geo::{haversine_miles, DistanceMatrix, GeoPoint, GridIndex};
use mlp_sampling::{sample_categorical, AliasTable, Pcg64};
use mlp_social::{Generator, GeneratorConfig};

fn bench_distance_kernels(c: &mut Criterion) {
    let a = GeoPoint::new(30.2672, -97.7431).unwrap();
    let b = GeoPoint::new(34.0522, -118.2437).unwrap();
    c.bench_function("haversine_miles", |bench| {
        bench.iter(|| haversine_miles(black_box(a), black_box(b)))
    });
    let gaz = Gazetteer::us_cities();
    c.bench_function("distance_matrix_lookup", |bench| {
        let m = gaz.distances();
        bench.iter(|| m.get(black_box(3), black_box(200)))
    });
    c.bench_function("distance_matrix_build_300", |bench| {
        let points: Vec<GeoPoint> = gaz.cities().iter().map(|c| c.center).collect();
        bench.iter(|| DistanceMatrix::build(black_box(&points)))
    });
}

fn bench_sampling(c: &mut Criterion) {
    let mut rng = Pcg64::new(1);
    let weights: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
    let table = AliasTable::new(&weights).unwrap();
    c.bench_function("alias_sample_1000", |bench| bench.iter(|| table.sample(&mut rng)));
    let small: Vec<f64> = (1..=30).map(|i| i as f64).collect();
    c.bench_function("categorical_sample_30", |bench| {
        bench.iter(|| sample_categorical(&mut rng, black_box(&small)))
    });
}

fn bench_grid(c: &mut Criterion) {
    let gaz = Gazetteer::with_synthetic(&SynthConfig { total_cities: 1000, ..Default::default() });
    let points: Vec<GeoPoint> = gaz.cities().iter().map(|c| c.center).collect();
    let grid = GridIndex::build(&points, 100.0).unwrap();
    let q = GeoPoint::new(35.0, -95.0).unwrap();
    c.bench_function("grid_within_100mi_of_1000", |bench| {
        bench.iter(|| grid.within_radius(black_box(q), 100.0))
    });
    c.bench_function("grid_nearest_of_1000", |bench| bench.iter(|| grid.nearest(black_box(q))));
}

fn bench_extraction(c: &mut Criterion) {
    let gaz = Gazetteer::us_cities();
    let ex = VenueExtractor::new(&gaz);
    let tweet = "just landed in los angeles, missing austin already! dinner near hollywood \
                 then driving to santa monica tomorrow";
    c.bench_function("venue_extraction_tweet", |bench| bench.iter(|| ex.extract(black_box(tweet))));
}

fn bench_generator(c: &mut Criterion) {
    let gaz = Gazetteer::us_cities();
    let mut group = c.benchmark_group("generator");
    group.sample_size(10);
    for users in [500usize, 2_000] {
        group.bench_with_input(BenchmarkId::from_parameter(users), &users, |bench, &n| {
            let config = GeneratorConfig { num_users: n, ..Default::default() };
            bench.iter(|| Generator::new(&gaz, config.clone()).generate())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_distance_kernels,
    bench_sampling,
    bench_grid,
    bench_extraction,
    bench_generator
);
criterion_main!(benches);
