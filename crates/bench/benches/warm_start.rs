//! Cold vs warm serving cost on the 300-user synthetic dataset.
//!
//! "Cold" answers a prediction request the only way the pre-snapshot repo
//! could: run full-corpus Gibbs from scratch and read the profile out of
//! the result. "Warm" freezes that training once (off the clock, as a
//! serving fleet would) and answers requests by folding users into the
//! immutable snapshot. The numbers land in BENCHMARKS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_core::{
    FoldInConfig, FoldInEngine, Mlp, MlpConfig, NewUserObservations, OnlineUpdater,
    PosteriorSnapshot, StalenessPolicy,
};
use mlp_gazetteer::Gazetteer;
use mlp_social::{Generator, GeneratorConfig, UserId};
use std::collections::HashSet;

const NUM_USERS: usize = 300;
const NUM_UNSEEN: u32 = 40;

struct Fixture {
    gaz: Gazetteer,
    train: mlp_social::Dataset,
    requests: Vec<NewUserObservations>,
    snapshot: PosteriorSnapshot,
}

fn fixture() -> Fixture {
    let gaz = Gazetteer::us_cities();
    let data = Generator::new(
        &gaz,
        GeneratorConfig { num_users: NUM_USERS, seed: 42, ..Default::default() },
    )
    .generate();
    let unseen: Vec<UserId> =
        ((NUM_USERS as u32 - NUM_UNSEEN)..NUM_USERS as u32).map(UserId).collect();
    let held: HashSet<UserId> = unseen.iter().copied().collect();
    let mut train = data.dataset.mask_users(&unseen);
    train.edges.retain(|e| !held.contains(&e.follower) && !held.contains(&e.friend));
    train.mentions.retain(|m| !held.contains(&m.user));
    let mut requests = NewUserObservations::batch_from_dataset(&data.dataset, &unseen);
    for obs in &mut requests {
        obs.neighbors.retain(|p| !held.contains(p));
    }
    let (_, snapshot) = Mlp::new(&gaz, &train, MlpConfig::default()).unwrap().run_with_snapshot();
    Fixture { gaz, train, requests, snapshot }
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let fx = fixture();
    let mut group = c.benchmark_group("warm_start_300_users");
    group.sample_size(10);

    // Cold: a prediction request pays for full-corpus training.
    group.bench_function("cold_full_retrain", |b| {
        b.iter(|| Mlp::new(&fx.gaz, &fx.train, MlpConfig::default()).unwrap().run())
    });

    // Warm: the snapshot is already frozen; requests pay only fold-in.
    group.bench_function("warm_fold_in_40_users", |b| {
        let engine = FoldInEngine::new(&fx.snapshot, &fx.gaz, FoldInConfig::default()).unwrap();
        b.iter(|| engine.fold_in_batch(&fx.requests).unwrap())
    });

    group.bench_function("warm_fold_in_single_user", |b| {
        let engine = FoldInEngine::new(&fx.snapshot, &fx.gaz, FoldInConfig::default()).unwrap();
        b.iter(|| engine.fold_in(&fx.requests[0]).unwrap())
    });

    // The offline freeze + encode cost a serving fleet pays once.
    group.bench_function("snapshot_encode_decode", |b| {
        b.iter(|| PosteriorSnapshot::decode(fx.snapshot.try_encode().unwrap()).unwrap())
    });

    group.finish();
}

/// Delta commit vs cold retrain: absorbing the 40 new users' posteriors
/// into the trained snapshot (fold-in + index-wise commit + incremental
/// artifact encode — the whole online-refresh pipeline, including the
/// per-iteration snapshot clone an updater would not normally pay) against
/// retraining full Gibbs on D₀∪D₁, the only pre-refresh way to make the
/// model absorb them.
fn bench_online_refresh(c: &mut Criterion) {
    let fx = fixture();
    let gaz = Gazetteer::us_cities();
    let data = Generator::new(
        &gaz,
        GeneratorConfig { num_users: NUM_USERS, seed: 42, ..Default::default() },
    )
    .generate();
    let unseen: Vec<UserId> =
        ((NUM_USERS as u32 - NUM_UNSEEN)..NUM_USERS as u32).map(UserId).collect();
    // Cold comparison corpus: everything observed, new users unlabeled.
    let full_masked = data.dataset.mask_users(&unseen);

    let mut group = c.benchmark_group("online_refresh_300_users");
    group.sample_size(10);

    group.bench_function("delta_commit_40_users", |b| {
        b.iter(|| {
            let mut updater = OnlineUpdater::new(
                &fx.gaz,
                fx.snapshot.clone(),
                FoldInConfig::default(),
                StalenessPolicy::default(),
            )
            .unwrap();
            updater.absorb(&fx.requests).unwrap();
            updater.commit().unwrap();
            updater.encode_artifact().unwrap()
        })
    });

    group.bench_function("cold_retrain_with_new_users", |b| {
        b.iter(|| Mlp::new(&gaz, &full_masked, MlpConfig::default()).unwrap().run())
    });

    group.finish();
}

criterion_group!(benches, bench_cold_vs_warm, bench_online_refresh);
criterion_main!(benches);
