//! Facade overhead: `ServingEngine::profile_batch` vs the low-level
//! `FoldInEngine::fold_in_batch` it wraps, on the 300-user synthetic
//! dataset (40 unseen-user requests — the warm-start serving scale).
//!
//! The facade pays, per call: one mutex-guarded `Arc` clone (the epoch
//! read), one `FoldInEngine` construction against the pinned snapshot,
//! one clone of the request observations, and the typed response
//! mapping. The acceptance bar for PR 5 is < 5% over the direct path,
//! recorded in BENCHMARKS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use mlp_core::{
    FoldInConfig, FoldInEngine, Mlp, MlpConfig, NewUserObservations, PosteriorSnapshot,
    ProfileRequest, ServingEngine,
};
use mlp_gazetteer::Gazetteer;
use mlp_social::{Generator, GeneratorConfig, UserId};
use std::collections::HashSet;

const NUM_USERS: usize = 300;
const NUM_UNSEEN: u32 = 40;

struct Fixture {
    gaz: Gazetteer,
    observations: Vec<NewUserObservations>,
    requests: Vec<ProfileRequest>,
    snapshot: PosteriorSnapshot,
}

fn fixture() -> Fixture {
    let gaz = Gazetteer::us_cities();
    let data = Generator::new(
        &gaz,
        GeneratorConfig { num_users: NUM_USERS, seed: 42, ..Default::default() },
    )
    .generate();
    let unseen: Vec<UserId> =
        ((NUM_USERS as u32 - NUM_UNSEEN)..NUM_USERS as u32).map(UserId).collect();
    let held: HashSet<UserId> = unseen.iter().copied().collect();
    let mut train = data.dataset.mask_users(&unseen);
    train.edges.retain(|e| !held.contains(&e.follower) && !held.contains(&e.friend));
    train.mentions.retain(|m| !held.contains(&m.user));
    let mut observations = NewUserObservations::batch_from_dataset(&data.dataset, &unseen);
    for obs in &mut observations {
        obs.neighbors.retain(|p| !held.contains(p));
    }
    let requests = observations.iter().cloned().map(ProfileRequest::new).collect();
    let (_, snapshot) = Mlp::new(&gaz, &train, MlpConfig::default()).unwrap().run_with_snapshot();
    Fixture { gaz, observations, requests, snapshot }
}

fn bench_engine_profile_batch(c: &mut Criterion) {
    let fx = fixture();
    let mut group = c.benchmark_group("engine_profile_batch");
    group.sample_size(10);

    // The low-level baseline: a pre-built fold-in engine answering the
    // whole request wave (the PR 2 serving idiom).
    group.bench_function("direct_fold_in_batch_40_users", |b| {
        let engine = FoldInEngine::new(&fx.snapshot, &fx.gaz, FoldInConfig::default()).unwrap();
        b.iter(|| engine.fold_in_batch(&fx.observations).unwrap())
    });

    // The facade: epoch read + per-call fold-in engine construction +
    // typed responses, all inside the measured loop.
    group.bench_function("facade_profile_batch_40_users", |b| {
        let engine = ServingEngine::builder(&fx.gaz).from_snapshot(fx.snapshot.clone()).unwrap();
        b.iter(|| engine.profile_batch(&fx.requests).unwrap())
    });

    // Same comparison at the single-request scale, where fixed per-call
    // overhead has nowhere to hide.
    group.bench_function("direct_fold_in_single_user", |b| {
        let engine = FoldInEngine::new(&fx.snapshot, &fx.gaz, FoldInConfig::default()).unwrap();
        b.iter(|| engine.fold_in(&fx.observations[0]).unwrap())
    });
    group.bench_function("facade_profile_single_user", |b| {
        let engine = ServingEngine::builder(&fx.gaz).from_snapshot(fx.snapshot.clone()).unwrap();
        b.iter(|| engine.profile(&fx.requests[0]).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_engine_profile_batch);
criterion_main!(benches);
