//! Regenerates **Table 4** (paper Sec. 5.2): discovery case studies —
//! multi-location users with the true locations next to MLP's and BaseU's
//! top-2 predictions.
//!
//! The paper's showcased pattern: MLP finds both regions (e.g. Los Angeles
//! *and* Austin), while BaseU returns one region and a nearby city.

use mlp_bench::BenchArgs;
use mlp_eval::cases::{discovery_cases, render_discovery_table};
use mlp_eval::Method;

fn main() {
    let args = BenchArgs::parse();
    println!("{}", args.banner("Table 4: Case Studies on Multiple Location Discovery"));
    let ctx = args.context();

    let result =
        mlp_eval::runner::run_mlp(&ctx.gaz, &ctx.data.dataset, ctx.mlp_config_for(Method::Mlp));
    let cases = discovery_cases(&ctx, &result, 5);
    println!("{}", render_discovery_table(&ctx, &cases));
    println!("shape check: MLP's top-2 covers both true regions; BaseU collapses to one");
}
