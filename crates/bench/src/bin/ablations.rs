//! Ablation study over the design choices DESIGN.md calls out:
//!
//! * candidacy pruning ON vs OFF (Sec. 4.3 — speed *and* accuracy);
//! * supervision boost sweep (the Λ diagonal);
//! * noisy-relationship mixture ON vs OFF (ρ = 0 forces all-location-based);
//! * counting noisy assignments in ϕ (the literal Eqs. 7–9 reading);
//! * Gibbs-EM refinement ON vs OFF;
//! * sequential vs parallel sweep.
//!
//! Each variant reports masked-home ACC@100 on one fold plus wall time.

use mlp_bench::BenchArgs;
use mlp_core::MlpConfig;
use mlp_eval::{table::pct, HomeTask, Method, TextTable};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    println!("{}", args.banner("Ablations over MLP design choices"));
    let mut ctx = args.context();

    let base_cfg = ctx.mlp_config.clone();
    let variants: Vec<(&str, MlpConfig)> = vec![
        ("full model (default)", base_cfg.clone()),
        ("no candidacy pruning", MlpConfig { candidacy_pruning: false, ..base_cfg.clone() }),
        ("no supervision boost (Λ = 0)", MlpConfig { supervision_boost: 0.0, ..base_cfg.clone() }),
        ("boost = 5", MlpConfig { supervision_boost: 5.0, ..base_cfg.clone() }),
        ("boost = 100", MlpConfig { supervision_boost: 100.0, ..base_cfg.clone() }),
        (
            "no noise mixture (ρ_f = ρ_t ≈ 0)",
            MlpConfig { rho_f: 1e-6, rho_t: 1e-6, ..base_cfg.clone() },
        ),
        (
            "count noisy assignments (literal Eqs. 7-9)",
            MlpConfig { count_noisy_assignments: true, ..base_cfg.clone() },
        ),
        (
            "with Gibbs-EM (2 rounds)",
            MlpConfig { gibbs_em: true, em_iterations: 2, ..base_cfg.clone() },
        ),
        ("tau = 0.03 (sparser profiles)", MlpConfig { tau: 0.03, ..base_cfg.clone() }),
        ("tau = 0.01 (sparsest)", MlpConfig { tau: 0.01, ..base_cfg.clone() }),
        ("parallel sweep (4 threads)", MlpConfig { threads: 4, ..base_cfg.clone() }),
    ];

    let mut table = TextTable::new(vec!["variant", "ACC@100", "wall time"]);
    for (name, cfg) in variants {
        ctx.mlp_config = cfg;
        let mut task = HomeTask::new(&ctx);
        task.folds_to_run = 1;
        let start = Instant::now();
        let report = task.run_method(Method::Mlp);
        let elapsed = start.elapsed();
        table.add_row(vec![
            name.to_string(),
            pct(report.acc_at_100),
            format!("{:.2}s", elapsed.as_secs_f64()),
        ]);
        eprintln!("  done: {name}");
    }
    println!("{table}");
    println!(
        "shape check: pruning OFF is slower at equal-or-worse accuracy; boost 0 hurts; \
         noise mixture OFF hurts; parallel ≈ sequential accuracy"
    );
}
