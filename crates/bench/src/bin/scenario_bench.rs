//! Scenario benchmark: accuracy-over-time under event-scripted drift and
//! churn, with the closed-loop auto-retrain policy in charge (PR 10).
//!
//! ```text
//! scenario_bench [--users N] [--ticks N] [--seed N] [--iters N]
//!                [--requests N] [--scenarios a,b,c] [--json FILE] [--smoke]
//! ```
//!
//! Runs each named canned scenario (default: all four — steady-state,
//! migration-wave, churn-storm, noise-burst) through
//! `mlp_eval::run_scenario`: the world evolves per the script, a live
//! `ServingEngine` serves every tick, and the engine's own
//! `StalenessPolicy` + drift signal decide between incremental refresh
//! and a full in-place retrain. Prints each per-tick curve and a summary
//! row per scenario.
//!
//! `--json FILE` writes all reports machine-readably (BENCH_10.json).
//! `--smoke` turns the run into the CI gate: zero errors, every tick
//! present and monotone, steady-state never retrains, and the migration
//! wave must trigger at least one auto-refresh *and* one drift-triggered
//! retrain whose committed accuracy recovers above the dip it reacted to.

use mlp_core::MlpConfig;
use mlp_eval::{run_scenario, ScenarioReport, ScenarioRunConfig, TextTable, TickAction};
use mlp_gazetteer::Gazetteer;
use mlp_social::{GeneratorConfig, ScenarioScript, CANNED_SCENARIOS};
use std::path::PathBuf;

struct Args {
    users: usize,
    ticks: usize,
    seed: u64,
    iters: usize,
    requests: usize,
    scenarios: Vec<String>,
    json: Option<PathBuf>,
    smoke: bool,
}

fn parse_num(s: &str) -> u64 {
    s.replace('_', "").parse().unwrap_or_else(|e| panic!("bad number {s}: {e}"))
}

fn parse_args() -> Args {
    let mut a = Args {
        users: 400,
        ticks: 8,
        seed: 2012,
        iters: 8,
        requests: 8,
        scenarios: CANNED_SCENARIOS.iter().map(|s| s.to_string()).collect(),
        json: None,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} requires a value"));
        match flag.as_str() {
            "--users" => a.users = parse_num(&value()) as usize,
            "--ticks" => a.ticks = parse_num(&value()) as usize,
            "--seed" => a.seed = parse_num(&value()),
            "--iters" => a.iters = parse_num(&value()) as usize,
            "--requests" => a.requests = parse_num(&value()) as usize,
            "--scenarios" => {
                a.scenarios = value().split(',').map(|s| s.trim().to_string()).collect();
            }
            "--json" => a.json = Some(PathBuf::from(value())),
            "--smoke" => a.smoke = true,
            other => panic!("unknown flag {other}"),
        }
    }
    a
}

fn main() {
    let a = parse_args();
    let gaz = Gazetteer::us_cities();
    println!(
        "# scenario_bench | users={} ticks={} seed={} iters={} requests={} scenarios={:?}",
        a.users, a.ticks, a.seed, a.iters, a.requests, a.scenarios
    );

    let config = ScenarioRunConfig {
        generator: GeneratorConfig { seed: a.seed, ..Default::default() },
        mlp: MlpConfig {
            iterations: a.iters,
            burn_in: (a.iters / 2).max(1),
            seed: a.seed,
            ..Default::default()
        },
        requests_per_tick: a.requests,
        ..Default::default()
    };

    let mut reports: Vec<ScenarioReport> = Vec::new();
    for name in &a.scenarios {
        let script = ScenarioScript::by_name(name, a.users, a.ticks).unwrap_or_else(|| {
            panic!("unknown scenario {name} (canned: {})", CANNED_SCENARIOS.join(", "))
        });
        let report =
            run_scenario(&gaz, script, &config).unwrap_or_else(|e| panic!("scenario {name}: {e}"));
        println!("\n## {name}");
        println!("{}", report.render_table());
        reports.push(report);
    }

    let mut summary = TextTable::new(vec![
        "scenario",
        "ticks",
        "acc_0",
        "acc_min",
        "acc_final",
        "refreshes",
        "retrains",
        "events",
    ]);
    for r in &reports {
        summary.add_row(vec![
            r.scenario.clone(),
            r.ticks.len().to_string(),
            format!("{:.4}", r.initial_acc),
            format!("{:.4}", r.min_acc_served().map_or(r.initial_acc, |(_, a)| a)),
            format!("{:.4}", r.final_acc_committed().unwrap_or(r.initial_acc)),
            r.refreshes().to_string(),
            r.retrains().to_string(),
            format!("{:#018x}", r.event_fingerprint),
        ]);
    }
    println!("\n{}", summary.render());

    if let Some(path) = &a.json {
        let bodies: Vec<String> = reports
            .iter()
            .map(|r| {
                // Indent each report object two levels under "scenarios".
                let body = r.to_json();
                let indented: Vec<String> =
                    body.trim_end().lines().map(|l| format!("    {l}")).collect();
                indented.join("\n").trim_start().to_string()
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"scenario\",\n  \"users\": {},\n  \"ticks\": {},\n  \
             \"seed\": {},\n  \"iters\": {},\n  \"requests_per_tick\": {},\n  \
             \"drift_threshold\": {},\n  \"scenarios\": [\n    {}\n  ]\n}}\n",
            a.users,
            a.ticks,
            a.seed,
            a.iters,
            a.requests,
            config.staleness.drift_threshold,
            bodies.join(",\n    ")
        );
        std::fs::write(path, json).expect("writing json report");
        println!("wrote {}", path.display());
    }

    if a.smoke {
        smoke_gate(&reports, a.ticks);
        println!("smoke gate: ok");
    }
}

/// The CI assertions: every scenario ran every tick in order, the policy
/// stayed quiet in steady state, and the migration wave exercised the
/// whole closed loop (refresh, drift-triggered retrain, recovery).
fn smoke_gate(reports: &[ScenarioReport], ticks: usize) {
    for r in reports {
        assert_eq!(r.ticks.len(), ticks, "{}: missing ticks", r.scenario);
        for (i, t) in r.ticks.iter().enumerate() {
            assert_eq!(t.tick, i + 1, "{}: tick stream not monotone", r.scenario);
        }
        match r.scenario.as_str() {
            "steady-state" => {
                assert_eq!(r.retrains(), 0, "steady-state must not retrain");
                assert!(r.refreshes() >= 1, "steady-state arrivals must refresh");
            }
            "migration-wave" => {
                assert!(r.refreshes() >= 1, "migration-wave must auto-refresh");
                assert!(r.retrains() >= 1, "migration-wave must auto-retrain");
                let retrain = r
                    .ticks
                    .iter()
                    .find(|t| matches!(t.action, TickAction::Retrain { .. }))
                    .expect("retrain tick");
                let (_, dip) = r.min_acc_served().expect("non-empty run");
                assert!(
                    retrain.acc_committed > dip,
                    "retrain must recover above the dip: dip={dip}, committed={}",
                    retrain.acc_committed
                );
            }
            _ => {}
        }
    }
}
