//! Regenerates **Table 5** (paper Sec. 5.3): per-edge location assignments
//! for one showcase multi-location user — the paper's user 13069282 (Los
//! Angeles + Austin), whose followers split into geo groups.

use mlp_bench::BenchArgs;
use mlp_eval::cases::{explanation_cases, render_explanation_table};
use mlp_eval::Method;

fn main() {
    let args = BenchArgs::parse();
    println!("{}", args.banner("Table 5: Case Studies on Relationship Explanation"));
    let ctx = args.context();

    let result =
        mlp_eval::runner::run_mlp(&ctx.gaz, &ctx.data.dataset, ctx.mlp_config_for(Method::Mlp));
    match explanation_cases(&ctx, &result, 10) {
        Some((user, rows)) => {
            let locs: Vec<String> = ctx
                .data
                .truth
                .locations(user)
                .iter()
                .map(|&c| ctx.gaz.city(c).full_name())
                .collect();
            println!("showcase user {user}, true locations: {}", locs.join(" / "));
            println!("{}", render_explanation_table(&ctx, &rows));
            println!(
                "shape check: assignments split the user's neighbors into geo groups \
                 matching the two regions"
            );
        }
        None => println!("no sufficiently separated multi-location user at this scale"),
    }
}
