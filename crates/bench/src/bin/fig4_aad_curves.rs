//! Regenerates **Figure 4** (paper Sec. 5.1): accumulative accuracy at
//! distance (AAD) curves for all five methods, 0–140 miles.
//!
//! Fig. 4(a) compares MLP_U vs BaseU, 4(b) MLP_C vs BaseC, 4(c) all five;
//! this binary prints the full grid, from which all three panels read off.

use mlp_bench::BenchArgs;
use mlp_eval::{HomeTask, Method, TextTable};

fn main() {
    let args = BenchArgs::parse();
    println!("{}", args.banner("Figure 4: Accumulative Accuracy at Distance"));
    let ctx = args.context();

    let mut task = HomeTask::new(&ctx);
    task.folds_to_run = args.folds;

    let reports: Vec<_> = Method::PAPER_LINEUP
        .iter()
        .map(|&m| {
            let r = task.run_method(m);
            eprintln!("  done: {m}");
            r
        })
        .collect();

    let mut headers = vec!["miles".to_string()];
    headers.extend(reports.iter().map(|r| r.method.to_string()));
    let mut table = TextTable::new(headers);
    for (i, &(d, _)) in reports[0].aad.iter().enumerate() {
        let mut row = vec![format!("{d:.0}")];
        row.extend(reports.iter().map(|r| format!("{:.4}", r.aad[i].1)));
        table.add_row(row);
    }
    println!("{table}");
    println!("shape check: every curve is non-decreasing; MLP dominates at all distances");
}
