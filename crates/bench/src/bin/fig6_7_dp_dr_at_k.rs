//! Regenerates **Figures 6 and 7** (paper Sec. 5.2): DP@K (Fig. 6) and
//! DR@K (Fig. 7) for K = 1..3, all five methods.
//!
//! The paper's observations to check: (1) MLP methods win at every K;
//! (2) baselines' recall barely grows with K (they retrieve one location
//! plus its vicinity); (3) baselines' DP@1 is poor because the second
//! location's relationships act as noise.

use mlp_bench::BenchArgs;
use mlp_eval::{table::pct, Method, MultiLocationTask, TextTable};

fn main() {
    let args = BenchArgs::parse();
    println!("{}", args.banner("Figures 6-7: DP@K and DR@K at K=1..3"));
    let ctx = args.context();

    let task = MultiLocationTask::new(&ctx);
    let reports: Vec<_> = Method::PAPER_LINEUP
        .iter()
        .map(|&m| {
            let r = task.run_method(m);
            eprintln!("  done: {m}");
            r
        })
        .collect();

    for (figure, is_dp) in [("Figure 6: DP@K", true), ("Figure 7: DR@K", false)] {
        println!("\n{figure}");
        let mut headers = vec!["K".to_string()];
        headers.extend(reports.iter().map(|r| r.method.to_string()));
        let mut table = TextTable::new(headers);
        for &k in &task.ks {
            let mut row = vec![format!("@{k}")];
            for r in &reports {
                let v = if is_dp { r.dp(k) } else { r.dr(k) };
                row.push(pct(v.expect("k evaluated")));
            }
            table.add_row(row);
        }
        println!("{table}");
    }
    println!("shape check: MLP DR grows with K; baseline DR stays nearly flat");
}
