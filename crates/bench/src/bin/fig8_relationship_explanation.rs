//! Regenerates **Figure 8** (paper Sec. 5.3): relationship-explanation
//! accuracy at 25/50/100 miles, MLP vs the home-assignment baseline.
//!
//! Paper reference at 100 miles: MLP ≈ 57%, Base ≈ 40%; the paper also
//! notes ACC@50 ≈ ACC@100 for MLP (correct explanations are mostly within
//! 50 miles).

use mlp_bench::BenchArgs;
use mlp_eval::{table::pct, RelationTask, TextTable};

fn main() {
    let args = BenchArgs::parse();
    println!("{}", args.banner("Figure 8: Relationship Explanation ACC@m"));
    let ctx = args.context();

    let task = RelationTask::new(&ctx);
    println!("evaluation edges: {} (paper: 4,426)", task.eval_edges.len());

    let base = task.run_base();
    eprintln!("  done: Base");
    let mlp = task.run_mlp();
    eprintln!("  done: MLP");

    let mut table = TextTable::new(vec!["miles", "Base", "MLP"]);
    for &(m, base_acc) in &base.acc {
        let mlp_acc = mlp.acc_at(m).expect("same thresholds");
        table.add_row(vec![format!("{m:.0}"), pct(base_acc), pct(mlp_acc)]);
    }
    println!("{table}");
    println!("shape check: MLP > Base at every threshold; MLP ACC@50 ≈ ACC@100");
}
