//! Corpus-scale benchmark: out-of-core training cost and memory versus
//! corpus size (PR 8).
//!
//! ```text
//! corpus_scale [--sizes 10_000,100_000,1_000_000] [--chunk 50_000]
//!              [--shards 8] [--reconcile-every 2] [--iters 4]
//!              [--cities N] [--seed N] [--serve-requests N]
//!              [--json FILE] [--rss-budget-mb N]
//! ```
//!
//! For each size the harness streams a chunked corpus to disk
//! (`StreamingGenerator::write_corpus`), trains the sharded out-of-core
//! path through the `ServingEngine` facade, then serves a closed loop of
//! fold-in requests against the frozen posterior. It reports ms/sweep
//! (wall-clock training time over Gibbs sweeps, streaming setup passes
//! included), serving QPS with p50/p99 latency, and the process peak RSS
//! (`VmHWM`) after each phase. Sizes run ascending in one process, so
//! each size's RSS reading is taken before any larger corpus allocates.
//!
//! `--json FILE` writes the same rows machine-readably (BENCH_8.json);
//! `--rss-budget-mb N` makes the run fail if peak RSS exceeds the budget
//! — the CI large-corpus smoke gate. Off Linux (no `VmHWM`) the RSS
//! column degrades to "n/a" (`null` in JSON) and the budget check is
//! skipped with a notice instead of vacuously passing.

use mlp_bench::{mb_cell, mb_json, peak_rss_mb};
use mlp_core::{MlpConfig, NewUserObservations, ProfileRequest, ServingEngine};
use mlp_gazetteer::{Gazetteer, SynthConfig, VenueId};
use mlp_social::stream::StreamingGenerator;
use mlp_social::{GeneratorConfig, UserId};
use std::path::PathBuf;
use std::time::Instant;

struct Args {
    sizes: Vec<usize>,
    chunk: usize,
    shards: usize,
    reconcile_every: usize,
    iters: usize,
    cities: usize,
    seed: u64,
    serve_requests: usize,
    json: Option<PathBuf>,
    rss_budget_mb: Option<u64>,
}

fn parse_num(s: &str) -> u64 {
    s.replace('_', "").parse().unwrap_or_else(|e| panic!("bad number {s}: {e}"))
}

fn parse_args() -> Args {
    let mut a = Args {
        sizes: vec![10_000, 100_000],
        chunk: 50_000,
        shards: 8,
        reconcile_every: 2,
        iters: 4,
        cities: 300,
        seed: 2012,
        serve_requests: 100,
        json: None,
        rss_budget_mb: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} requires a value"));
        match flag.as_str() {
            "--sizes" => {
                a.sizes = value().split(',').map(|s| parse_num(s) as usize).collect();
            }
            "--chunk" => a.chunk = parse_num(&value()) as usize,
            "--shards" => a.shards = parse_num(&value()) as usize,
            "--reconcile-every" => a.reconcile_every = parse_num(&value()) as usize,
            "--iters" => a.iters = parse_num(&value()) as usize,
            "--cities" => a.cities = parse_num(&value()) as usize,
            "--seed" => a.seed = parse_num(&value()),
            "--serve-requests" => a.serve_requests = parse_num(&value()) as usize,
            "--json" => a.json = Some(PathBuf::from(value())),
            "--rss-budget-mb" => a.rss_budget_mb = Some(parse_num(&value())),
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(!a.sizes.is_empty(), "--sizes must name at least one size");
    a.sizes.sort_unstable();
    a
}

struct Row {
    users: usize,
    gen_secs: f64,
    train_secs: f64,
    ms_per_sweep: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    /// `None` off Linux / missing `VmHWM` — reported as "n/a" / `null`.
    peak_rss_mb: Option<f64>,
}

fn main() {
    let a = parse_args();
    let gaz =
        Gazetteer::with_synthetic(&SynthConfig { total_cities: a.cities, ..Default::default() });
    println!(
        "# corpus_scale | sizes={:?} chunk={} shards={} reconcile_every={} iters={} \
         cities={} seed={}",
        a.sizes, a.chunk, a.shards, a.reconcile_every, a.iters, a.cities, a.seed
    );

    let mut rows = Vec::new();
    for &users in &a.sizes {
        let dir =
            std::env::temp_dir().join(format!("mlp_corpus_scale_{users}_{}", std::process::id()));
        if dir.exists() {
            std::fs::remove_dir_all(&dir).unwrap();
        }

        let t = Instant::now();
        let config = GeneratorConfig { num_users: users, seed: a.seed, ..Default::default() };
        let manifest = StreamingGenerator::new(&gaz, config, a.chunk)
            .write_corpus(&dir)
            .expect("corpus generation");
        let gen_secs = t.elapsed().as_secs_f64();
        println!(
            "[{users}] corpus: {} chunks, {} edges, {} mentions in {gen_secs:.1}s",
            manifest.num_chunks, manifest.total_edges, manifest.total_mentions
        );

        let t = Instant::now();
        let engine = ServingEngine::builder(&gaz)
            .mlp_config(MlpConfig {
                iterations: a.iters,
                burn_in: (a.iters / 2).max(1),
                seed: a.seed,
                ..Default::default()
            })
            .shards(a.shards)
            .reconcile_every(a.reconcile_every)
            .train_corpus(&dir)
            .expect("out-of-core training");
        let train_secs = t.elapsed().as_secs_f64();
        let ms_per_sweep = train_secs * 1000.0 / a.iters as f64;
        println!("[{users}] train: {train_secs:.1}s total, {ms_per_sweep:.0} ms/sweep");

        // Closed-loop serving: synthetic unseen users with deterministic
        // observations over the trained population.
        let requests: Vec<ProfileRequest> = (0..a.serve_requests)
            .map(|r| {
                let pick =
                    |i: u64, m: usize| ((r as u64 * 2654435761 + i * 40503) % m as u64) as u32;
                ProfileRequest::new(NewUserObservations {
                    neighbors: (0..3).map(|i| UserId(pick(i, users))).collect(),
                    mentions: (0..3).map(|i| VenueId(pick(i + 7, gaz.num_venues()))).collect(),
                })
            })
            .collect();
        let mut lat_ms: Vec<f64> = Vec::with_capacity(requests.len());
        let t = Instant::now();
        for req in &requests {
            let t0 = Instant::now();
            engine.profile(req).expect("serving request");
            lat_ms.push(t0.elapsed().as_secs_f64() * 1000.0);
        }
        let serve_secs = t.elapsed().as_secs_f64();
        lat_ms.sort_by(f64::total_cmp);
        let pct = |p: f64| lat_ms[((lat_ms.len() - 1) as f64 * p) as usize];
        let (p50_ms, p99_ms) = (pct(0.50), pct(0.99));
        let qps = requests.len() as f64 / serve_secs;

        let peak_rss_mb = peak_rss_mb();
        println!(
            "[{users}] serve: {qps:.0} QPS, p50 {p50_ms:.2} ms, p99 {p99_ms:.2} ms | \
             peak rss {} MiB",
            mb_cell(peak_rss_mb)
        );

        std::fs::remove_dir_all(&dir).ok();
        rows.push(Row {
            users,
            gen_secs,
            train_secs,
            ms_per_sweep,
            qps,
            p50_ms,
            p99_ms,
            peak_rss_mb,
        });
    }

    if let Some(path) = &a.json {
        let entries: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"users\": {}, \"gen_secs\": {:.2}, \"train_secs\": {:.2}, \
                     \"ms_per_sweep\": {:.1}, \"qps\": {:.1}, \"p50_ms\": {:.3}, \
                     \"p99_ms\": {:.3}, \"peak_rss_mb\": {}}}",
                    r.users,
                    r.gen_secs,
                    r.train_secs,
                    r.ms_per_sweep,
                    r.qps,
                    r.p50_ms,
                    r.p99_ms,
                    mb_json(r.peak_rss_mb)
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"corpus_scale\",\n  \"chunk\": {},\n  \"shards\": {},\n  \
             \"reconcile_every\": {},\n  \"iters\": {},\n  \"cities\": {},\n  \"seed\": {},\n  \
             \"rows\": [\n{}\n  ]\n}}\n",
            a.chunk,
            a.shards,
            a.reconcile_every,
            a.iters,
            a.cities,
            a.seed,
            entries.join(",\n")
        );
        std::fs::write(path, json).expect("writing json report");
        println!("wrote {}", path.display());
    }

    if let Some(budget) = a.rss_budget_mb {
        // Skip (loudly) rather than vacuously pass when the platform
        // offers no reading — a 0 would wave any budget through.
        match peak_rss_mb() {
            Some(mb) => {
                let peak_mb = mb.ceil() as u64;
                assert!(
                    peak_mb <= budget,
                    "peak RSS {peak_mb} MiB exceeds the {budget} MiB budget"
                );
                println!("rss budget: {peak_mb} MiB <= {budget} MiB, ok");
            }
            None => println!("rss budget: no VmHWM reading on this platform, budget not checked"),
        }
    }
}
