//! Regenerates **Figure 3** (paper Sec. 4.1–4.2): the data analysis that
//! motivates the model.
//!
//! * 3(a): following probability vs. distance with the power-law fit
//!   (paper: α = −0.55, β = 0.0045 on its crawl);
//! * 3(b): tweeting probabilities of the top venues at two cities
//!   (paper uses Austin and Los Angeles);
//! * 3(c): a multi-location user's friends/venues split across regions.

use mlp_bench::BenchArgs;
use mlp_eval::observations::{
    following_curve, showcase_user, tweeting_probabilities, user_footprint,
};
use mlp_eval::TextTable;
use mlp_social::Adjacency;

fn main() {
    let args = BenchArgs::parse();
    println!("{}", args.banner("Figure 3: Observations"));
    let ctx = args.context();

    // --- 3(a) ---
    println!("\nFigure 3(a): following probability vs distance (log-log)");
    let curve = following_curve(&ctx.data.dataset, &ctx.gaz, 50.0);
    let mut table = TextTable::new(vec!["miles", "P(follow)", "pairs"]);
    for &(d, p, w) in curve.points.iter().take(30) {
        table.add_row(vec![format!("{d:.0}"), format!("{p:.3e}"), format!("{w:.0}")]);
    }
    println!("{table}");
    match curve.fit {
        Some(fit) => println!(
            "power-law fit: alpha = {:.3}, beta = {:.5}  (paper: alpha = -0.55, beta = 0.0045)",
            fit.alpha, fit.beta
        ),
        None => println!("fit failed (curve too sparse at this scale)"),
    }

    // --- 3(b) ---
    println!("\nFigure 3(b): tweeting probabilities of top venues");
    for (name, state) in [("austin", "TX"), ("los angeles", "CA")] {
        let Some(city) = ctx.gaz.city_by_name_state(name, state) else { continue };
        let probs = tweeting_probabilities(&ctx.data.dataset, city, 5);
        println!("at {}:", ctx.gaz.city(city).full_name());
        let mut table = TextTable::new(vec!["venue", "P(tweet)"]);
        for (v, p) in probs {
            table.add_row(vec![ctx.gaz.venue(v).name.clone(), format!("{p:.4}")]);
        }
        println!("{table}");
    }

    // --- 3(c) ---
    println!("Figure 3(c): a multi-location user's footprint");
    let adj = Adjacency::build(&ctx.data.dataset);
    match showcase_user(&ctx.data.dataset, &ctx.data.truth, &ctx.gaz, &adj, 500.0) {
        Some(user) => {
            let fp = user_footprint(&ctx.data.dataset, &ctx.data.truth, &adj, user);
            let names: Vec<String> =
                fp.true_locations.iter().map(|&c| ctx.gaz.city(c).full_name()).collect();
            println!("user {user}: true locations {}", names.join(" / "));
            // Bucket neighbors by nearest true location.
            for &loc in &fp.true_locations {
                let near = fp
                    .neighbor_cities
                    .iter()
                    .filter(|&&c| ctx.gaz.distance(c, loc) <= 150.0)
                    .count();
                println!(
                    "  neighbors within 150mi of {}: {near} / {}",
                    ctx.gaz.city(loc).full_name(),
                    fp.neighbor_cities.len()
                );
            }
            println!("  tweeted venue tokens: {}", fp.venues.len());
        }
        None => println!("no sufficiently separated multi-location user at this scale"),
    }
}
