//! Closed-loop serving load generator (see `mlp_bench::load`).
//!
//! ```text
//! serve_load [--users N] [--churn-pool N] [--clients N] [--seconds F]
//!            [--seed N] [--threads N] [--coalesce N] [--no-churn]
//!            [--churn-batch N] [--artifact FILE] [--kill-after F]
//!            [--compact-bytes N] [--smoke] [--contend] [--recover]
//! ```
//!
//! Default mode trains a synthetic posterior and races closed-loop
//! clients against a background refresh writer, printing sustained QPS
//! and p50/p90/p99/p999 latency. `--contend` instead compares contended
//! epoch-handle acquisition through a mutex baseline versus the
//! lock-free path. `--smoke` is the CI gate: a sub-second run that must
//! serve without a single error.
//!
//! `--artifact FILE` makes the run file-backed on the durable path:
//! every churn commit is fsync'd to the sidecar `FILE.wal` before it
//! publishes, and `--kill-after S` aborts the process mid-churn — the
//! crash half of the crash-recovery harness. `--recover` (with the same
//! flags) is the other half: it reopens the artifact, replays the
//! committed log, truncates any torn tail, and asserts the recovered
//! posterior byte-identical — and bit-identically serving — versus an
//! uninterrupted replay of the same churn waves.

use mlp_bench::load::{self, LoadConfig, LoadMode};
use std::time::Duration;

fn main() {
    let (config, mode) = LoadConfig::parse_from(std::env::args().skip(1));
    println!("{}", config.banner());
    run_mode(config, mode);
    println!("peak rss: {}", mlp_bench::peak_rss_display());
}

fn run_mode(config: LoadConfig, mode: LoadMode) {
    match mode {
        LoadMode::Contend => {
            let window = Duration::from_secs_f64(config.seconds.max(0.05));
            let report = load::contend(&config, window).expect("contend run");
            println!("{}", report.summary());
        }
        LoadMode::Measure => {
            let report = load::run(&config).expect("load run");
            println!("{}", report.summary());
        }
        LoadMode::Smoke => {
            let report = load::run(&config).expect("smoke run");
            println!("{}", report.summary());
            assert!(report.qps() > 0.0, "smoke: engine served nothing");
            assert_eq!(report.errors, 0, "smoke: serving errors under churn");
            assert_eq!(report.churn_errors, 0, "smoke: churn writer errored");
            println!("smoke: ok");
        }
        LoadMode::Recover => {
            let summary = load::recover(&config).expect("recover run");
            println!("{}", summary.summary());
            println!("recover: ok");
        }
    }
}
