//! Cold-start benchmark: copied decode vs zero-copy mapped open of a v5
//! serving artifact (PR 9).
//!
//! ```text
//! snapshot_load [--sizes 10_000,100_000,1_000_000] [--cities N]
//!               [--candidates K] [--seed N] [--json FILE]
//!               [--budget-ms N] [--rss-budget-mb N] [--min-speedup X]
//! ```
//!
//! For each size the harness synthesises a structurally valid posterior
//! of that many users (no training — this measures the storage layer),
//! writes the v5 artifact to disk, then opens it twice: once through the
//! copying decode (`PosteriorSnapshot::decode`, every slab materialised
//! on the heap) and once through the mapped path
//! (`PosteriorSnapshot::open_mapped`, slabs borrowed from the page
//! cache). It reports wall-clock open time and the resident-memory
//! growth of each open, split into anonymous (heap duplication — the
//! cost the mapped path removes) and file-backed (page cache the kernel
//! can evict) components. A value probe asserts both opens thaw the same
//! posterior before any number is reported.
//!
//! `--json FILE` writes the rows machine-readably (BENCH_9.json). The
//! gate flags make the run fail loudly — the CI cold-start smoke:
//! `--budget-ms` bounds the full-verify mapped open, `--rss-budget-mb`
//! bounds its *anonymous* RSS growth, and `--min-speedup` bounds
//! copied ÷ structural — the O(structure) open whose headroom (~30x on
//! the reference box) survives a noisy shared runner, where the
//! full-verify ratio (~3x, both sides I/O-bound) would flake.

use bytes::Bytes;
use mlp_bench::current_rss;
use mlp_core::snapshot::{gazetteer_fingerprint, Integrity, PosteriorSnapshot, UserPosterior};
use mlp_core::{UserArena, VenueArena};
use mlp_gazetteer::{CityId, Gazetteer, SynthConfig};
use mlp_geo::PowerLaw;
use mlp_social::UserId;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

struct Args {
    sizes: Vec<usize>,
    cities: usize,
    candidates: usize,
    seed: u64,
    json: Option<PathBuf>,
    budget_ms: Option<f64>,
    rss_budget_mb: Option<f64>,
    min_speedup: Option<f64>,
}

fn parse_num(s: &str) -> u64 {
    s.replace('_', "").parse().unwrap_or_else(|e| panic!("bad number {s}: {e}"))
}

fn parse_args() -> Args {
    let mut a = Args {
        sizes: vec![10_000, 100_000, 1_000_000],
        cities: 300,
        candidates: 4,
        seed: 2012,
        json: None,
        budget_ms: None,
        rss_budget_mb: None,
        min_speedup: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("{flag} requires a value"));
        match flag.as_str() {
            "--sizes" => a.sizes = value().split(',').map(|s| parse_num(s) as usize).collect(),
            "--cities" => a.cities = parse_num(&value()) as usize,
            "--candidates" => a.candidates = parse_num(&value()) as usize,
            "--seed" => a.seed = parse_num(&value()),
            "--json" => a.json = Some(PathBuf::from(value())),
            "--budget-ms" => a.budget_ms = Some(parse_num(&value()) as f64),
            "--rss-budget-mb" => a.rss_budget_mb = Some(parse_num(&value()) as f64),
            "--min-speedup" => {
                a.min_speedup =
                    Some(value().parse().unwrap_or_else(|e| panic!("bad speedup: {e}")));
            }
            other => panic!("unknown flag {other}"),
        }
    }
    assert!(!a.sizes.is_empty(), "--sizes must name at least one size");
    assert!(a.candidates >= 1, "--candidates must be at least 1");
    a.sizes.sort_unstable();
    a
}

/// A deterministic, structurally valid posterior of `users` users: `k`
/// sorted candidate cities each, plus a sparse venue-count arena. The
/// content is arbitrary — only the slab shapes and sizes matter here.
fn synth_snapshot(gaz: &Gazetteer, users: usize, k: usize, seed: u64) -> PosteriorSnapshot {
    let cities = gaz.num_cities() as u64;
    let venues = gaz.num_venues() as u64;
    let mut state = seed | 1;
    let mut next = move || {
        // splitmix64 — cheap, deterministic, good enough for shapes.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };

    let arena = UserArena::from_users((0..users).map(|_| {
        let mut cand: Vec<u32> = (0..k).map(|_| (next() % cities) as u32).collect();
        cand.sort_unstable();
        cand.dedup();
        let n = cand.len();
        let mean_counts: Vec<f64> = (0..n).map(|_| (next() % 16) as f64 / 4.0 + 0.25).collect();
        let mean_total = mean_counts.iter().sum();
        let gammas: Vec<f64> = (0..n).map(|_| (next() % 64) as f64 / 64.0 + 0.05).collect();
        let gamma_total = gammas.iter().sum();
        UserPosterior {
            home: CityId(cand[(next() as usize) % n]),
            candidates: cand.into_iter().map(CityId).collect(),
            gammas,
            mean_counts,
            mean_total,
            gamma_total,
        }
    }));

    let venues_arena = VenueArena::from_rows((0..cities).map(|_| {
        let mut ids: Vec<u32> = (0..6).map(|_| (next() % venues) as u32).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter().map(|v| (v, (next() % 32) as f64 / 8.0 + 0.125)).collect::<Vec<_>>()
    }));

    let venue_probs: Vec<f64> = vec![1.0 / venues as f64; venues as usize];
    PosteriorSnapshot {
        variant: mlp_core::Variant::Full,
        count_noisy_assignments: false,
        tau: 0.1,
        delta: 0.05,
        rho_f: 0.15,
        rho_t: 0.2,
        power_law: PowerLaw { alpha: -0.55, beta: 0.0045 },
        follow_prob: 0.5,
        venue_probs,
        num_cities: gaz.num_cities() as u32,
        num_venues: gaz.num_venues() as u32,
        gaz_fingerprint: gazetteer_fingerprint(gaz),
        users: arena,
        venues: venues_arena,
    }
}

/// A cheap value probe over sampled users — equal probes on both open
/// paths certify they thawed the same posterior without an O(n) compare.
fn probe(snap: &PosteriorSnapshot) -> f64 {
    let n = snap.num_users();
    let stride = (n / 97).max(1);
    let mut acc = snap.venues.city_total(CityId(0));
    let mut u = 0;
    while u < n {
        let view = snap.users.user(UserId(u as u32));
        acc += view.mean_total + view.gamma_total + view.home.0 as f64;
        acc += view.gammas.first().copied().unwrap_or(0.0);
        u += stride;
    }
    acc
}

struct Row {
    users: usize,
    file_mb: f64,
    copied_ms: f64,
    copied_anon_mb: f64,
    copied_total_mb: f64,
    mapped_ms: f64,
    mapped_anon_mb: f64,
    mapped_total_mb: f64,
    speedup: f64,
    fast_ms: f64,
    fast_speedup: f64,
}

fn mb(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

fn main() {
    let a = parse_args();
    let gaz =
        Gazetteer::with_synthetic(&SynthConfig { total_cities: a.cities, ..Default::default() });
    println!(
        "# snapshot_load | sizes={:?} cities={} candidates={} seed={}",
        a.sizes, a.cities, a.candidates, a.seed
    );

    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for &users in &a.sizes {
        let path = std::env::temp_dir()
            .join(format!("mlp_snapshot_load_{users}_{}.mlps", std::process::id()));
        let built = synth_snapshot(&gaz, users, a.candidates, a.seed);
        let artifact = built.try_encode().expect("encoding artifact");
        std::fs::write(&path, artifact.as_slice()).expect("writing artifact");
        let file_mb = mb(artifact.len() as u64);
        let expected_probe = probe(&built);
        drop((built, artifact));

        // Copied decode: read the file, materialise every slab.
        let rss0 = current_rss().unwrap_or_default();
        let t = Instant::now();
        let raw = std::fs::read(&path).expect("reading artifact");
        let copied = PosteriorSnapshot::decode(Bytes::from(raw)).expect("copied decode");
        let copied_ms = t.elapsed().as_secs_f64() * 1000.0;
        let copied_rss = current_rss().unwrap_or_default().delta_since(&rss0);
        assert!(!copied.is_zero_copy());
        assert_eq!(probe(&copied), expected_probe, "copied probe");
        drop(copied);

        // Mapped open: borrow the slabs from the page cache. The file is
        // warm from the write above — both paths see the same cache.
        let rss0 = current_rss().unwrap_or_default();
        let t = Instant::now();
        let map = Arc::new(mmap_lite::Mmap::open(&path).expect("mapping artifact"));
        let mapped = PosteriorSnapshot::open_mapped(&map).expect("mapped open");
        let mapped_ms = t.elapsed().as_secs_f64() * 1000.0;
        let mapped_rss = current_rss().unwrap_or_default().delta_since(&rss0);
        assert!(mapped.is_zero_copy(), "v5 open must borrow, not copy");
        assert_eq!(probe(&mapped), expected_probe, "mapped probe");
        drop((mapped, map));

        // Mapped open under structural-only verification: the open
        // touches the offset/id sections and nothing else, so the float
        // payloads (most of the file) are left to fault in on demand.
        let t = Instant::now();
        let map = Arc::new(mmap_lite::Mmap::open(&path).expect("mapping artifact"));
        let fast =
            PosteriorSnapshot::open_mapped_with(&map, Integrity::Structural).expect("fast open");
        let fast_ms = t.elapsed().as_secs_f64() * 1000.0;
        assert!(fast.is_zero_copy());
        assert_eq!(probe(&fast), expected_probe, "structural-open probe");
        drop((fast, map));
        std::fs::remove_file(&path).ok();

        let speedup = copied_ms / mapped_ms.max(1e-9);
        let fast_speedup = copied_ms / fast_ms.max(1e-9);
        println!(
            "[{users}] artifact {file_mb:.1} MiB | copied {copied_ms:.1} ms \
             (+{:.1} MiB anon) | mapped+verify {mapped_ms:.1} ms (+{:.1} MiB anon, \
             +{:.1} MiB file-backed) {speedup:.1}x | mapped+structural {fast_ms:.1} ms \
             {fast_speedup:.1}x",
            mb(copied_rss.anon),
            mb(mapped_rss.anon),
            mb(mapped_rss.file),
        );

        if let Some(budget) = a.budget_ms {
            if mapped_ms > budget {
                failures.push(format!("[{users}] mapped open {mapped_ms:.1} ms > {budget} ms"));
            }
        }
        if let Some(budget) = a.rss_budget_mb {
            if mb(mapped_rss.anon) > budget {
                failures.push(format!(
                    "[{users}] mapped anon RSS +{:.1} MiB > {budget} MiB",
                    mb(mapped_rss.anon)
                ));
            }
        }
        if let Some(min) = a.min_speedup {
            if fast_speedup < min {
                failures.push(format!("[{users}] structural speedup {fast_speedup:.1}x < {min}x"));
            }
        }

        rows.push(Row {
            users,
            file_mb,
            copied_ms,
            copied_anon_mb: mb(copied_rss.anon),
            copied_total_mb: mb(copied_rss.total),
            mapped_ms,
            mapped_anon_mb: mb(mapped_rss.anon),
            mapped_total_mb: mb(mapped_rss.total),
            speedup,
            fast_ms,
            fast_speedup,
        });
    }

    if let Some(path) = &a.json {
        let entries: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"users\": {}, \"file_mb\": {:.1}, \"copied_open_ms\": {:.2}, \
                     \"copied_rss_anon_mb\": {:.1}, \"copied_rss_total_mb\": {:.1}, \
                     \"mapped_open_ms\": {:.2}, \"mapped_rss_anon_mb\": {:.1}, \
                     \"mapped_rss_total_mb\": {:.1}, \"speedup\": {:.1}, \
                     \"structural_open_ms\": {:.2}, \"structural_speedup\": {:.1}}}",
                    r.users,
                    r.file_mb,
                    r.copied_ms,
                    r.copied_anon_mb,
                    r.copied_total_mb,
                    r.mapped_ms,
                    r.mapped_anon_mb,
                    r.mapped_total_mb,
                    r.speedup,
                    r.fast_ms,
                    r.fast_speedup
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"snapshot_load\",\n  \"cities\": {},\n  \"candidates\": {},\n  \
             \"seed\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
            a.cities,
            a.candidates,
            a.seed,
            entries.join(",\n")
        );
        std::fs::write(path, json).expect("writing json report");
        println!("wrote {}", path.display());
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
