//! Regenerates **Table 2** (paper Sec. 5.1): home-location prediction
//! ACC@100 for BaseU, BaseC, MLP_U, MLP_C, and MLP under five-fold CV.
//!
//! Paper reference row: 52.44 / 49.67 / 58.8 / 55.3 / 62.3 (%).

use mlp_bench::BenchArgs;
use mlp_eval::{table::pct, HomeTask, Method, TextTable};

fn main() {
    let args = BenchArgs::parse();
    println!("{}", args.banner("Table 2: Home Location Prediction (ACC@100)"));
    let ctx = args.context();

    let mut task = HomeTask::new(&ctx);
    task.folds_to_run = args.folds;

    let mut table = TextTable::new(vec!["Method", "ACC@100 (measured)", "ACC@100 (paper)"]);
    let paper = [
        ("BaseU", "52.44%"),
        ("BaseC", "49.67%"),
        ("MLP_U", "58.8%"),
        ("MLP_C", "55.3%"),
        ("MLP", "62.3%"),
    ];
    for (method, (_, paper_acc)) in Method::PAPER_LINEUP.iter().zip(paper) {
        let report = task.run_method(*method);
        table.add_row(vec![method.to_string(), pct(report.acc_at_100), paper_acc.to_string()]);
        eprintln!("  done: {method}");
    }
    println!("{table}");
    println!("shape check: MLP > MLP_U > BaseU and MLP > MLP_C > BaseC expected");
}
