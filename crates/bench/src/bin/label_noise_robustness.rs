//! Extension experiment (not in the paper): robustness to registered-label
//! noise.
//!
//! The paper takes registered locations as ground truth while conceding
//! "some registered locations are incorrect, but we believe they are rare".
//! This binary quantifies what happens when they are *not* rare: it sweeps
//! the fraction of corrupted registered labels and compares how BaseU
//! (which consumes neighbor labels directly) and MLP (which treats labels
//! as one more noisy signal inside a mixture) degrade on masked-home
//! prediction.

use mlp_bench::BenchArgs;
use mlp_core::MlpConfig;
use mlp_eval::{table::pct, ExperimentContext, HomeTask, Method, TextTable};
use mlp_gazetteer::{Gazetteer, SynthConfig};
use mlp_social::GeneratorConfig;

fn main() {
    let args = BenchArgs::parse();
    println!("{}", args.banner("Extension: robustness to registered-label noise"));

    let mut table = TextTable::new(vec!["label noise", "BaseU", "MLP_U", "MLP"]);
    for noise in [0.0, 0.1, 0.2, 0.3] {
        let gaz = Gazetteer::with_synthetic(&SynthConfig {
            total_cities: args.cities,
            seed: args.seed,
            ..Default::default()
        });
        let gen_config = GeneratorConfig {
            num_users: args.users,
            seed: args.seed,
            label_noise_fraction: noise,
            ..Default::default()
        };
        let mlp_config = MlpConfig {
            iterations: args.iters,
            burn_in: (args.iters / 2).max(1),
            seed: args.seed,
            ..Default::default()
        };
        let ctx = ExperimentContext::with_configs(gaz, gen_config, mlp_config, 5);
        let mut task = HomeTask::new(&ctx);
        task.folds_to_run = 1;
        let base_u = task.run_method(Method::BaseU).acc_at_100;
        let mlp_u = task.run_method(Method::MlpU).acc_at_100;
        let mlp = task.run_method(Method::Mlp).acc_at_100;
        table.add_row(vec![format!("{:.0}%", noise * 100.0), pct(base_u), pct(mlp_u), pct(mlp)]);
        eprintln!("  done: noise {noise}");
    }
    println!("{table}");
    println!(
        "shape check: all methods degrade with label noise; MLP's content channel \
         and noise mixture should cushion the fall relative to BaseU"
    );
}
