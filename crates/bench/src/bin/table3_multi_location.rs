//! Regenerates **Table 3** (paper Sec. 5.2): multiple-location discovery,
//! DP@2 and DR@2 over the multi-location cohort.
//!
//! Paper reference: DP@2 33.8 / 39.3 / 45.1 / 48.3 / 50.6 (%),
//!                  DR@2 27.2 / 33.1 / 42.3 / 45.3 / 47.0 (%).

use mlp_bench::BenchArgs;
use mlp_eval::{table::pct, Method, MultiLocationTask, TextTable};

fn main() {
    let args = BenchArgs::parse();
    println!("{}", args.banner("Table 3: Multiple Location Discovery (DP@2 / DR@2)"));
    let ctx = args.context();

    let task = MultiLocationTask::new(&ctx);
    println!("multi-location cohort: {} users (paper: 585)", task.cohort.len());

    let mut table = TextTable::new(vec![
        "Method",
        "DP@2 (measured)",
        "DR@2 (measured)",
        "DP@2 (paper)",
        "DR@2 (paper)",
    ]);
    let paper = [
        ("33.8%", "27.2%"),
        ("39.3%", "33.1%"),
        ("45.1%", "42.3%"),
        ("48.3%", "45.3%"),
        ("50.6%", "47.0%"),
    ];
    for (method, (p_dp, p_dr)) in Method::PAPER_LINEUP.iter().zip(paper) {
        let report = task.run_method(*method);
        table.add_row(vec![
            method.to_string(),
            pct(report.dp(2).expect("K=2 evaluated")),
            pct(report.dr(2).expect("K=2 evaluated")),
            p_dp.to_string(),
            p_dr.to_string(),
        ]);
        eprintln!("  done: {method}");
    }
    println!("{table}");
    println!("shape check: MLP variants beat both baselines on DP and (especially) DR");
}
