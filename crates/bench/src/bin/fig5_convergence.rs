//! Regenerates **Figure 5** (paper Sec. 5.1): per-iteration convergence of
//! MLP. The paper plots the accuracy *change* per Gibbs iteration on a log
//! scale and observes convergence after ~14 iterations.
//!
//! Ground truth is hidden at inference time, so the observable analogue is
//! the fraction of users whose predicted home moved; we print both that
//! and the assignment-change fractions, per iteration.

use mlp_bench::BenchArgs;
use mlp_eval::{Method, TextTable};

fn main() {
    let args = BenchArgs::parse();
    println!("{}", args.banner("Figure 5: Convergence of MLP"));
    let ctx = args.context();

    let result =
        mlp_eval::runner::run_mlp(&ctx.gaz, &ctx.data.dataset, ctx.mlp_config_for(Method::Mlp));

    let mut table = TextTable::new(vec![
        "iter",
        "home change",
        "edge change",
        "mention change",
        "log-likelihood",
    ]);
    for it in &result.diagnostics.iterations {
        table.add_row(vec![
            it.iteration.to_string(),
            format!("{:.5}", it.home_change_fraction),
            format!("{:.4}", it.edge_change_fraction),
            format!("{:.4}", it.mention_change_fraction),
            format!("{:.1}", it.log_likelihood),
        ]);
    }
    println!("{table}");
    match result.diagnostics.convergence_iteration(0.01) {
        Some(it) => println!(
            "converged (home-change ≤ 1%) after iteration {it} — paper observes ~14 iterations"
        ),
        None => println!("not converged to 1% within {} iterations", args.iters),
    }
}
