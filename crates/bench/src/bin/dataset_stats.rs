//! Regenerates the paper's dataset statistics (Sec. 5, "Data Collection"
//! and Sec. 4.3): users / edges / mentions, mean friends-followers-venues
//! per user, and the candidacy-coverage figure ("about 92% \[of\] users
//! whose locations appear in their relationships").

use mlp_bench::BenchArgs;
use mlp_social::DatasetStats;

fn main() {
    let args = BenchArgs::parse();
    println!("{}", args.banner("Dataset statistics (paper Sec. 5 data collection)"));
    let ctx = args.context();
    let stats = DatasetStats::compute(&ctx.data.dataset, &ctx.gaz);
    println!("{stats}");
    println!();
    println!("paper reference: 139,180 users; 14.8 friends, 14.9 followers,");
    println!("29.0 tweeted venues per user; ~92% candidacy coverage");
    println!(
        "multi-location cohort: {} users ({:.1}%)",
        ctx.data.truth.multi_location_users().len(),
        100.0 * ctx.data.truth.multi_location_users().len() as f64
            / ctx.data.dataset.num_users() as f64
    );
}
