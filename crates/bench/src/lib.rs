//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation section (Sec. 5).
//!
//! One binary per artifact (see DESIGN.md's per-experiment index):
//!
//! | artifact | binary |
//! |---|---|
//! | Fig. 3(a–c) data analysis | `fig3_observations` |
//! | Tab. 2 home prediction    | `table2_home_prediction` |
//! | Fig. 4 AAD curves         | `fig4_aad_curves` |
//! | Fig. 5 convergence        | `fig5_convergence` |
//! | Tab. 3 multi-location     | `table3_multi_location` |
//! | Figs. 6–7 DP/DR at K      | `fig6_7_dp_dr_at_k` |
//! | Tab. 4 discovery cases    | `table4_case_studies` |
//! | Fig. 8 explanation        | `fig8_relationship_explanation` |
//! | Tab. 5 explanation cases  | `table5_relationship_cases` |
//! | design-choice ablations   | `ablations` |
//! | crawl statistics (Sec. 5) | `dataset_stats` |
//!
//! Criterion microbenches live in `benches/`. Every binary accepts
//! `--users N --cities N --seed N --iters N --folds N --quick`.
//!
//! Beyond the paper artifacts, [`load`] is the closed-loop serving load
//! generator behind the `serve_load` binary (sustained QPS and tail
//! latency against [`mlp_core::ServingEngine`], with and without
//! refresh churn).

pub mod load;

use mlp_core::MlpConfig;
use mlp_eval::ExperimentContext;

/// Peak resident set size of this process in bytes, read from `VmHWM`
/// in `/proc/self/status` (the kernel's high-water mark — it never
/// decreases, so one read at the end of a run captures the whole run).
/// Returns `None` off Linux or if the field is missing.
pub fn peak_rss() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Current resident set of this process in bytes (`VmRSS`), split into
/// its anonymous and file-backed parts (`RssAnon`, `RssFile`). The
/// anonymous share is the honest "duplication" metric for the cold-start
/// bench: a copied decode materializes every slab on the heap (anon),
/// while a mapped open leaves them in evictable page cache (file).
/// Returns `None` off Linux or if the fields are missing.
pub fn current_rss() -> Option<RssSample> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let field = |name: &str| -> Option<u64> {
        let line = status.lines().find(|l| l.starts_with(name))?;
        let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
        Some(kb * 1024)
    };
    Some(RssSample { total: field("VmRSS:")?, anon: field("RssAnon:")?, file: field("RssFile:")? })
}

/// One reading of the process's resident memory — see [`current_rss`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RssSample {
    /// `VmRSS` — everything resident.
    pub total: u64,
    /// `RssAnon` — heap and other anonymous pages.
    pub anon: u64,
    /// `RssFile` — resident file-backed pages (mapped artifacts).
    pub file: u64,
}

impl RssSample {
    /// Bytes grown since `earlier`, per component, clamped at zero.
    pub fn delta_since(&self, earlier: &RssSample) -> RssSample {
        RssSample {
            total: self.total.saturating_sub(earlier.total),
            anon: self.anon.saturating_sub(earlier.anon),
            file: self.file.saturating_sub(earlier.file),
        }
    }
}

/// `peak_rss` in MiB, or `None` off Linux / when `VmHWM` is missing.
/// Bench binaries thread the `Option` through to their reports — `"n/a"`
/// in human output, `null` in JSON — instead of inventing a number.
pub fn peak_rss_mb() -> Option<f64> {
    peak_rss().map(|b| b as f64 / (1024.0 * 1024.0))
}

/// `peak_rss` formatted for reports: `"123.4 MiB"`, or `"n/a"` off Linux.
pub fn peak_rss_display() -> String {
    match peak_rss_mb() {
        Some(mb) => format!("{mb:.1} MiB"),
        None => "n/a".into(),
    }
}

/// An optional MiB reading formatted for a report cell: `"123.4"` or
/// `"n/a"`.
pub fn mb_cell(mb: Option<f64>) -> String {
    mb.map_or_else(|| "n/a".into(), |v| format!("{v:.1}"))
}

/// An optional MiB reading as a JSON value: `123.4` or `null` (never
/// `NaN`, which is not JSON).
pub fn mb_json(mb: Option<f64>) -> String {
    mb.map_or_else(|| "null".into(), |v| format!("{v:.1}"))
}

/// Shared CLI arguments for the bench binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Number of synthetic users.
    pub users: usize,
    /// Gazetteer size (cities).
    pub cities: usize,
    /// Master seed.
    pub seed: u64,
    /// Gibbs sweeps per run.
    pub iters: usize,
    /// CV folds actually executed.
    pub folds: usize,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self { users: 4_000, cities: 300, seed: 2012, iters: 20, folds: 5 }
    }
}

impl BenchArgs {
    /// Parses `std::env::args`, applying `--quick` (a 1,000-user,
    /// single-fold smoke configuration) before explicit overrides.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--quick" => {
                    out.users = 1_000;
                    out.folds = 1;
                    out.iters = 12;
                }
                "--users" | "--cities" | "--seed" | "--iters" | "--folds" => {
                    let value = it
                        .next()
                        .unwrap_or_else(|| panic!("{flag} requires a value"))
                        .parse::<u64>()
                        .unwrap_or_else(|e| panic!("{flag}: {e}"));
                    match flag.as_str() {
                        "--users" => out.users = value as usize,
                        "--cities" => out.cities = value as usize,
                        "--seed" => out.seed = value,
                        "--iters" => out.iters = value as usize,
                        _ => out.folds = value as usize,
                    }
                }
                other => panic!("unknown flag {other}"),
            }
        }
        out
    }

    /// Builds the experiment context these arguments describe.
    pub fn context(&self) -> ExperimentContext {
        let mut ctx = ExperimentContext::standard(self.users, self.cities, self.seed);
        ctx.mlp_config = MlpConfig {
            iterations: self.iters,
            burn_in: (self.iters / 2).max(1),
            seed: self.seed,
            ..Default::default()
        };
        ctx
    }

    /// A one-line provenance banner printed by every binary.
    pub fn banner(&self, artifact: &str) -> String {
        format!(
            "# {artifact} | users={} cities={} seed={} iters={} folds={}",
            self.users, self.cities, self.seed, self.iters, self.folds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        BenchArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_without_flags() {
        let a = parse(&[]);
        assert_eq!(a.users, 4_000);
        assert_eq!(a.folds, 5);
    }

    #[test]
    fn explicit_overrides() {
        let a = parse(&["--users", "500", "--seed", "9", "--folds", "2"]);
        assert_eq!(a.users, 500);
        assert_eq!(a.seed, 9);
        assert_eq!(a.folds, 2);
    }

    #[test]
    fn quick_then_override() {
        let a = parse(&["--quick", "--users", "2000"]);
        assert_eq!(a.users, 2_000, "explicit flag wins over --quick");
        assert_eq!(a.folds, 1);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse(&["--bogus"]);
    }

    #[test]
    fn banner_mentions_parameters() {
        let b = parse(&["--quick"]).banner("Table 2");
        assert!(b.contains("Table 2") && b.contains("users=1000"));
    }

    #[test]
    fn missing_rss_degrades_to_na_and_null() {
        assert_eq!(crate::mb_cell(None), "n/a");
        assert_eq!(crate::mb_json(None), "null");
        assert_eq!(crate::mb_cell(Some(123.44)), "123.4");
        assert_eq!(crate::mb_json(Some(123.44)), "123.4");
        // On Linux the reading exists and the display renders it; off
        // Linux both sides degrade together rather than panicking.
        match crate::peak_rss_mb() {
            Some(mb) => {
                assert!(mb > 0.0);
                assert!(crate::peak_rss_display().ends_with("MiB"));
            }
            None => assert_eq!(crate::peak_rss_display(), "n/a"),
        }
    }
}
