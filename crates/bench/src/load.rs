//! Closed-loop load generation against the serving engine.
//!
//! The paper's evaluation measures model quality; this module measures
//! the *serving* claims of the engine layer: sustained single-user QPS
//! under concurrent readers, tail latency while a background writer
//! churns refresh commits, and the contended cost of acquiring an epoch
//! handle. The harness is closed-loop — each client issues its next
//! request only after the previous answer returns, so reported QPS is a
//! sustained rate, not an open-loop arrival fantasy.
//!
//! Four pieces:
//!
//! * [`LoadConfig`] / [`LoadConfig::parse_from`] — the `serve_load`
//!   binary's knobs (trained users, client count, duration, coalescing
//!   wave bound, churn writer on/off, durable artifact, kill timer);
//! * [`run`] — trains a synthetic posterior, then races N clients
//!   (optionally through a [`mlp_core::Coalescer`]) against an optional
//!   refresh-churn writer for the configured duration, folding every
//!   response time into a mergeable [`LatencyHistogram`]. With
//!   `--artifact` the engine is file-backed on the durable path (every
//!   churn commit fsync'd to the sidecar write-ahead log before
//!   publish), and `--kill-after S` aborts the process mid-churn — the
//!   crash half of the crash-recovery harness;
//! * [`recover`] — the verification half: reopens the artifact (replaying
//!   the committed log, truncating any torn tail) and proves the
//!   recovered posterior byte-identical — and bit-identically serving —
//!   versus an uninterrupted replay of the same churn waves;
//! * [`contend`] — the before/after of the lock-free epoch publication:
//!   T threads hammering handle acquisition through a mutex-guarded
//!   baseline (the pre-lock-free design) versus
//!   [`ServingEngine::snapshot`].

use mlp_core::engine::{response_determinism_hash, EngineError, ProfileRequest, ServingEngine};
use mlp_core::{FoldInConfig, MlpConfig};
use mlp_gazetteer::Gazetteer;
use mlp_geo::LatencyHistogram;
use mlp_sampling::{Pcg64, SplitMix64};
use mlp_social::{GeneratedData, Generator, GeneratorConfig, UserId};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Everything the `serve_load` binary can vary.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadConfig {
    /// Users trained into the base posterior.
    pub users: usize,
    /// Extra generated users reserved for the churn writer to absorb.
    pub churn_pool: usize,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Wall-clock measurement window in seconds.
    pub seconds: f64,
    /// Master seed (training, request schedule, churn schedule).
    pub seed: u64,
    /// Fold-in worker threads per request wave.
    pub threads: usize,
    /// Coalescer wave bound; `0` serves every request directly through
    /// [`ServingEngine::profile`] with no coalescing.
    pub coalesce: usize,
    /// Whether the background writer churns refresh commits during the
    /// measurement window.
    pub churn: bool,
    /// Users absorbed per refresh commit.
    pub churn_batch: usize,
    /// Pause between churn commits (keeps the 1-writer box from starving
    /// readers; commits clone the posterior).
    pub churn_pause: Duration,
    /// Gibbs sweeps for the synthetic cold train.
    pub train_iters: usize,
    /// File-backed mode: the base artifact path. Trained and written on
    /// first use, then (re)opened on the durable path — churn commits
    /// are fsync'd to the sidecar `<artifact>.wal` before publish.
    pub artifact: Option<String>,
    /// Crash mode: abort the process (no unwinding, no flush) this many
    /// seconds into the measurement window.
    pub kill_after: Option<f64>,
    /// WAL auto-compaction threshold in bytes. Defaults to `u64::MAX`
    /// (off): crash verification replays the log against the *original*
    /// base artifact, so the crash run must not fold the log into it.
    pub compact_bytes: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            users: 400,
            churn_pool: 120,
            clients: 4,
            seconds: 5.0,
            seed: 2012,
            threads: 1,
            coalesce: 8,
            churn: true,
            churn_batch: 8,
            churn_pause: Duration::from_millis(25),
            train_iters: 8,
            artifact: None,
            kill_after: None,
            compact_bytes: u64::MAX,
        }
    }
}

impl LoadConfig {
    /// The CI smoke configuration: small corpus, two clients, a
    /// sub-second window — enough to prove the serving path moves under
    /// concurrent churn without eating CI minutes.
    pub fn smoke() -> Self {
        Self {
            users: 80,
            churn_pool: 24,
            clients: 2,
            seconds: 0.5,
            churn_batch: 4,
            train_iters: 4,
            ..Self::default()
        }
    }

    /// Parses `serve_load` flags from an explicit iterator (testable).
    /// `--smoke` applies the smoke preset before explicit overrides.
    ///
    /// # Panics
    /// Panics on unknown flags or malformed values (the binary's
    /// fail-loud contract, matching [`crate::BenchArgs`]).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> (Self, LoadMode) {
        let mut out = Self::default();
        let mut mode = LoadMode::Measure;
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value =
                |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} requires a value"));
            let num = |flag: &str, raw: String| {
                raw.parse::<f64>().unwrap_or_else(|e| panic!("{flag}: {e}"))
            };
            match flag.as_str() {
                "--smoke" => {
                    out = Self::smoke();
                    mode = LoadMode::Smoke;
                }
                "--contend" => mode = LoadMode::Contend,
                "--recover" => mode = LoadMode::Recover,
                "--no-churn" => out.churn = false,
                "--users" => out.users = num(&flag, value(&flag)) as usize,
                "--churn-pool" => out.churn_pool = num(&flag, value(&flag)) as usize,
                "--clients" => out.clients = num(&flag, value(&flag)) as usize,
                "--seconds" => out.seconds = num(&flag, value(&flag)),
                "--seed" => out.seed = num(&flag, value(&flag)) as u64,
                "--threads" => out.threads = num(&flag, value(&flag)) as usize,
                "--coalesce" => out.coalesce = num(&flag, value(&flag)) as usize,
                "--churn-batch" => out.churn_batch = num(&flag, value(&flag)) as usize,
                "--artifact" => out.artifact = Some(value(&flag)),
                "--kill-after" => out.kill_after = Some(num(&flag, value(&flag))),
                "--compact-bytes" => out.compact_bytes = num(&flag, value(&flag)) as u64,
                other => panic!("unknown flag {other}"),
            }
        }
        if mode == LoadMode::Recover && out.artifact.is_none() {
            panic!("--recover requires --artifact FILE");
        }
        (out, mode)
    }

    /// One-line provenance banner.
    pub fn banner(&self) -> String {
        let mut line = format!(
            "# serve_load | users={} clients={} seconds={} seed={} threads={} coalesce={} \
             churn={} churn_batch={}",
            self.users,
            self.clients,
            self.seconds,
            self.seed,
            self.threads,
            self.coalesce,
            if self.churn { "on" } else { "off" },
            self.churn_batch
        );
        if let Some(artifact) = &self.artifact {
            line.push_str(&format!(" artifact={artifact}"));
        }
        if let Some(after) = self.kill_after {
            line.push_str(&format!(" kill_after={after}"));
        }
        line
    }
}

/// What the `serve_load` binary was asked to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Full measurement run, report to stdout.
    Measure,
    /// The CI gate: smoke preset + hard assertions on the report.
    Smoke,
    /// The handle-acquisition contention comparison instead of a load run.
    Contend,
    /// Crash-recovery verification: reopen `--artifact`, replay the
    /// committed write-ahead log, and prove the recovered state equal to
    /// an uninterrupted replay (see [`recover`]).
    Recover,
}

/// What a [`run`] measured.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests answered successfully across all clients.
    pub requests: u64,
    /// Requests answered with an error (must be zero on a healthy run).
    pub errors: u64,
    /// The actual measurement window.
    pub elapsed: Duration,
    /// Response-time distribution across all clients.
    pub latency: LatencyHistogram,
    /// Epochs the churn writer published during the window.
    pub epochs_published: u64,
    /// Refresh calls the churn writer completed.
    pub churn_refreshes: u64,
    /// Refresh calls that failed (must be zero on a healthy run).
    pub churn_errors: u64,
}

impl LoadReport {
    /// Sustained successful-request rate.
    pub fn qps(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// A quantile in microseconds (`0.0` when empty).
    pub fn quantile_us(&self, q: f64) -> f64 {
        self.latency.quantile(q).unwrap_or(0) as f64 / 1_000.0
    }

    /// The stdout/BENCHMARKS.md summary block.
    pub fn summary(&self) -> String {
        format!(
            "qps={:.1} requests={} errors={} elapsed={:.2}s\n\
             latency_us: p50={:.1} p90={:.1} p99={:.1} p999={:.1} max={:.1} mean={:.1}\n\
             churn: epochs_published={} refreshes={} errors={}",
            self.qps(),
            self.requests,
            self.errors,
            self.elapsed.as_secs_f64(),
            self.quantile_us(0.5),
            self.quantile_us(0.9),
            self.quantile_us(0.99),
            self.quantile_us(0.999),
            self.latency.max_nanos().unwrap_or(0) as f64 / 1_000.0,
            self.latency.mean_nanos().unwrap_or(0.0) / 1_000.0,
            self.epochs_published,
            self.churn_refreshes,
            self.churn_errors,
        )
    }
}

/// The synthetic corpus and the request/churn pools every mode derives
/// from a config — deterministic, so [`recover`] can rebuild the crash
/// run's churn schedule from the config alone.
///
/// The request pool re-serves the trained users' own observations as if
/// unseen; the churn pool holds the reserved tail users, absorbed
/// round-robin (a lap re-absorbs them as fresh posterior rows — harmless
/// for a load test, the posterior just keeps growing). Both pools keep
/// neighbor edges within the base posterior so requests remain valid no
/// matter how far churn has advanced.
fn corpus_and_pools(
    gaz: &Gazetteer,
    config: &LoadConfig,
) -> (GeneratedData, Vec<ProfileRequest>, Vec<ProfileRequest>) {
    let total_users = config.users + config.churn_pool;
    let data = Generator::new(
        gaz,
        GeneratorConfig { num_users: total_users, seed: config.seed, ..Default::default() },
    )
    .generate();
    let ids: Vec<UserId> = (0..config.users).map(|u| UserId(u as u32)).collect();
    let mut pool = ProfileRequest::batch_from_dataset(&data.dataset, &ids);
    for r in &mut pool {
        r.observations.neighbors.retain(|p| p.index() < config.users);
    }
    let churn_ids: Vec<UserId> = (config.users..total_users).map(|u| UserId(u as u32)).collect();
    let mut churn_pool = ProfileRequest::batch_from_dataset(&data.dataset, &churn_ids);
    for r in &mut churn_pool {
        r.observations.neighbors.retain(|p| p.index() < config.users);
    }
    (data, pool, churn_pool)
}

/// The fold-in configuration every mode shares (must be identical across
/// the crash run and the recovery verification for bit-equality).
fn fold_in_config(config: &LoadConfig) -> FoldInConfig {
    FoldInConfig { threads: config.threads.max(1), ..Default::default() }
}

/// Cold-trains the base posterior on the first `config.users` users.
fn cold_train<'a>(
    gaz: &'a Gazetteer,
    config: &LoadConfig,
    data: &GeneratedData,
) -> Result<ServingEngine<'a>, EngineError> {
    let iters = config.train_iters.max(2);
    ServingEngine::builder(gaz)
        .mlp_config(MlpConfig {
            iterations: iters,
            burn_in: (iters / 2).max(1),
            seed: config.seed,
            ..Default::default()
        })
        .fold_in_config(fold_in_config(config))
        .train(&data.dataset.prefix(config.users))
}

/// Opens the file-backed engine on the durable path, cold-training and
/// writing the base artifact first if the file does not exist yet.
/// Reopening an artifact a crash left behind recovers the committed log
/// on the way in.
fn open_durable<'a>(
    gaz: &'a Gazetteer,
    config: &LoadConfig,
    data: &GeneratedData,
    path: &str,
) -> Result<ServingEngine<'a>, EngineError> {
    if !Path::new(path).exists() {
        cold_train(gaz, config, data)?.write_artifact(path)?;
    }
    ServingEngine::builder(gaz)
        .fold_in_config(fold_in_config(config))
        .wal_compact_threshold(config.compact_bytes)
        .from_artifact_file(path)
}

/// Trains (or durably opens) a synthetic posterior and drives the closed
/// loop described in the [module docs](self). Returns after
/// `config.seconds` of wall clock (training time excluded) — unless
/// `config.kill_after` aborts the process first.
pub fn run(config: &LoadConfig) -> Result<LoadReport, EngineError> {
    let gaz = Gazetteer::us_cities();
    let (data, pool, churn_pool) = corpus_and_pools(&gaz, config);
    let engine = match config.artifact.as_deref() {
        Some(path) => open_durable(&gaz, config, &data, path)?,
        None => cold_train(&gaz, config, &data)?,
    };

    let coalescer = (config.coalesce > 0).then(|| engine.coalescer(config.coalesce));
    let stop = AtomicBool::new(false);
    let epoch_start = engine.epoch();

    // The crash under test: a detached timer that aborts the process
    // mid-churn — no unwinding, no destructors, no flush. Everything not
    // already fsync'd is lost, exactly like a kill -9.
    if let Some(after) = config.kill_after {
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs_f64(after.max(0.0)));
            std::process::abort();
        });
    }

    let (per_client, churn_out) = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..config.clients.max(1))
            .map(|c| {
                let (engine, coalescer, pool, stop) = (&engine, &coalescer, &pool, &stop);
                scope.spawn(move || {
                    let mut rng = Pcg64::new(SplitMix64::derive(
                        config.seed,
                        0xC11E_0000_0000_0000 ^ c as u64,
                    ));
                    let mut latency = LatencyHistogram::new();
                    let (mut ok, mut errors) = (0u64, 0u64);
                    while !stop.load(Ordering::Relaxed) {
                        let request = &pool[rng.next_bounded(pool.len())];
                        let begin = Instant::now();
                        let out = match coalescer {
                            Some(co) => co.profile(request),
                            None => engine.profile(request),
                        };
                        latency.record_duration(begin.elapsed());
                        match out {
                            Ok(_) => ok += 1,
                            Err(_) => errors += 1,
                        }
                    }
                    (latency, ok, errors)
                })
            })
            .collect();

        let churn = config.churn.then(|| {
            let (engine, churn_pool, stop) = (&engine, &churn_pool, &stop);
            let batch = config.churn_batch.max(1);
            let pause = config.churn_pause;
            scope.spawn(move || {
                let (mut refreshes, mut errors) = (0u64, 0u64);
                let mut next = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let mut wave = Vec::with_capacity(batch);
                    for _ in 0..batch {
                        wave.push(churn_pool[next % churn_pool.len()].clone());
                        next += 1;
                    }
                    match engine.refresh(&wave) {
                        Ok(_) => refreshes += 1,
                        Err(_) => errors += 1,
                    }
                    std::thread::sleep(pause);
                }
                (refreshes, errors)
            })
        });

        std::thread::sleep(Duration::from_secs_f64(config.seconds.max(0.05)));
        stop.store(true, Ordering::Relaxed);
        let per_client: Vec<_> =
            clients.into_iter().map(|h| h.join().expect("load client")).collect();
        let churn_out = churn.map(|h| h.join().expect("churn writer"));
        (per_client, churn_out)
    });

    let mut latency = LatencyHistogram::new();
    let (mut requests, mut errors) = (0u64, 0u64);
    for (h, ok, err) in per_client {
        latency.merge(&h);
        requests += ok;
        errors += err;
    }
    let (churn_refreshes, churn_errors) = churn_out.unwrap_or((0, 0));
    Ok(LoadReport {
        requests,
        errors,
        elapsed: Duration::from_secs_f64(config.seconds.max(0.05)),
        latency,
        epochs_published: engine.epoch() - epoch_start,
        churn_refreshes,
        churn_errors,
    })
}

/// What [`recover`] verified.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoverSummary {
    /// Committed delta records replayed from the write-ahead log.
    pub replayed_records: usize,
    /// Users those records appended past the base artifact.
    pub replayed_users: usize,
    /// Torn (uncommitted) tail bytes recovery truncated away.
    pub torn_bytes_dropped: u64,
    /// Whether a log bound to a different base was set aside.
    pub stale_log_set_aside: bool,
    /// Posterior user count after recovery.
    pub total_users: usize,
    /// Committed churn waves the crash run got through.
    pub waves: usize,
    /// The recovered engine's response fingerprint over the request pool
    /// (verified equal to the uninterrupted replay's).
    pub determinism_hash: u64,
}

impl RecoverSummary {
    /// One summary line.
    pub fn summary(&self) -> String {
        format!(
            "recover: replayed {} committed records ({} users, {} waves) torn_bytes={}{} \
             -> {} users, response_hash={:016x}",
            self.replayed_records,
            self.replayed_users,
            self.waves,
            self.torn_bytes_dropped,
            if self.stale_log_set_aside { " stale_log=set_aside" } else { "" },
            self.total_users,
            self.determinism_hash,
        )
    }
}

/// The verification half of the crash harness: reopens `config.artifact`
/// on the durable path (recovery-on-open replays every committed
/// write-ahead record and truncates any torn tail), then proves the
/// recovered engine equal to one that replayed the same churn waves
/// uninterrupted — byte-identical posterior encodings *and* bit-identical
/// serving over the request pool.
///
/// The ground truth is rebuildable because the churn schedule is
/// deterministic: waves of `churn_batch` requests taken round-robin from
/// the churn pool starting at index 0, and the number of committed waves
/// is recoverable from the user count the log replays to. Requires the
/// crash run to have left auto-compaction off (the default
/// `compact_bytes = u64::MAX`) so the on-disk base is still the artifact
/// the waves were committed against.
///
/// # Panics
/// Panics when no artifact is configured, when the recovered user count
/// is not a whole number of waves, or when either equality check fails —
/// the binary's fail-loud contract.
pub fn recover(config: &LoadConfig) -> Result<RecoverSummary, EngineError> {
    let path = config.artifact.as_deref().expect("recover requires an artifact path");
    let gaz = Gazetteer::us_cities();
    let (_, pool, churn_pool) = corpus_and_pools(&gaz, config);

    // Recovery under test: replay the committed log past the base.
    let recovered = ServingEngine::builder(&gaz)
        .fold_in_config(fold_in_config(config))
        .wal_compact_threshold(u64::MAX)
        .from_artifact_file(path)?;
    assert_eq!(recovered.epoch(), 0, "recovery must fold into epoch 0");
    let report = recovered.recovery_report().cloned().unwrap_or_default();

    // Ground truth: an uninterrupted in-memory replay of the same churn
    // waves over the same base artifact.
    let absorbed = recovered.snapshot().num_users() - config.users;
    let batch = config.churn_batch.max(1);
    assert_eq!(absorbed % batch, 0, "every committed record must be one full churn wave");
    let waves = absorbed / batch;
    let replay = ServingEngine::builder(&gaz)
        .fold_in_config(fold_in_config(config))
        .durable(false)
        .from_artifact_file(path)?;
    let mut next = 0usize;
    for _ in 0..waves {
        let wave: Vec<ProfileRequest> = (0..batch)
            .map(|_| {
                let r = churn_pool[next % churn_pool.len()].clone();
                next += 1;
                r
            })
            .collect();
        replay.refresh(&wave)?;
    }

    // The recovered posterior must be byte-identical to the replayed one…
    let recovered_bytes = recovered.snapshot().try_encode()?;
    let replayed_bytes = replay.snapshot().try_encode()?;
    assert_eq!(
        recovered_bytes.as_slice(),
        replayed_bytes.as_slice(),
        "recovered posterior must be byte-identical to an uninterrupted replay"
    );

    // …and must serve bit-identically.
    let recovered_hash = response_determinism_hash(&recovered.profile_batch(&pool)?);
    let replayed_hash = response_determinism_hash(&replay.profile_batch(&pool)?);
    assert_eq!(
        recovered_hash, replayed_hash,
        "recovered engine must serve bit-identically to an uninterrupted replay"
    );

    Ok(RecoverSummary {
        replayed_records: report.replayed_records,
        replayed_users: report.replayed_users,
        torn_bytes_dropped: report.torn_bytes_dropped,
        stale_log_set_aside: report.stale_log_moved_to.is_some(),
        total_users: recovered.snapshot().num_users(),
        waves,
        determinism_hash: recovered_hash,
    })
}

/// The contended handle-acquisition comparison.
#[derive(Debug, Clone, Copy)]
pub struct ContendReport {
    /// Hammering threads.
    pub threads: usize,
    /// Acquisitions per second through the mutex-guarded baseline (the
    /// pre-lock-free publication design: lock, clone the `Arc`, unlock).
    pub mutex_ops_per_sec: f64,
    /// Acquisitions per second through [`ServingEngine::snapshot`].
    pub lock_free_ops_per_sec: f64,
}

impl ContendReport {
    /// Lock-free speedup over the mutex baseline.
    pub fn speedup(&self) -> f64 {
        self.lock_free_ops_per_sec / self.mutex_ops_per_sec.max(f64::MIN_POSITIVE)
    }

    /// One summary line.
    pub fn summary(&self) -> String {
        format!(
            "contend threads={}: mutex={:.0} ops/s lock_free={:.0} ops/s speedup={:.2}x",
            self.threads,
            self.mutex_ops_per_sec,
            self.lock_free_ops_per_sec,
            self.speedup()
        )
    }
}

/// Measures contended epoch-handle acquisition: `threads` workers
/// spinning on handle acquisition for `window` through (a) a mutex
/// around the published handle — the structure the lock-free swap
/// replaced — and (b) the engine's own [`ServingEngine::snapshot`].
pub fn contend(config: &LoadConfig, window: Duration) -> Result<ContendReport, EngineError> {
    let gaz = Gazetteer::us_cities();
    let data = Generator::new(
        &gaz,
        GeneratorConfig { num_users: config.users, seed: config.seed, ..Default::default() },
    )
    .generate();
    let iters = config.train_iters.max(2);
    let engine = ServingEngine::builder(&gaz)
        .mlp_config(MlpConfig {
            iterations: iters,
            burn_in: (iters / 2).max(1),
            seed: config.seed,
            ..Default::default()
        })
        .train(&data.dataset)?;

    let threads = config.clients.max(1);
    let baseline = Mutex::new(engine.snapshot());
    let mutex_ops = hammer(threads, window, || {
        let handle = baseline.lock().expect("baseline lock").clone();
        std::hint::black_box(handle.epoch());
    });
    let lock_free_ops = hammer(threads, window, || {
        let handle = engine.snapshot();
        std::hint::black_box(handle.epoch());
    });
    Ok(ContendReport {
        threads,
        mutex_ops_per_sec: mutex_ops as f64 / window.as_secs_f64(),
        lock_free_ops_per_sec: lock_free_ops as f64 / window.as_secs_f64(),
    })
}

/// Spins `threads` workers on `op` for `window`; total completed ops.
fn hammer(threads: usize, window: Duration, op: impl Fn() + Sync) -> u64 {
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let (stop, op) = (&stop, &op);
                scope.spawn(move || {
                    let mut done = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        op();
                        done += 1;
                    }
                    done
                })
            })
            .collect();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        workers.into_iter().map(|h| h.join().expect("hammer worker")).sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> (LoadConfig, LoadMode) {
        LoadConfig::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_and_overrides() {
        let (c, mode) = parse(&[]);
        assert_eq!(mode, LoadMode::Measure);
        assert_eq!(c, LoadConfig::default());

        let (c, _) =
            parse(&["--users", "99", "--churn-pool", "33", "--seconds", "0.25", "--no-churn"]);
        assert_eq!(c.users, 99);
        assert_eq!(c.churn_pool, 33);
        assert_eq!(c.seconds, 0.25);
        assert!(!c.churn);
    }

    #[test]
    fn smoke_preset_then_override() {
        let (c, mode) = parse(&["--smoke", "--clients", "3"]);
        assert_eq!(mode, LoadMode::Smoke);
        assert_eq!(c.clients, 3, "explicit flag wins over the preset");
        assert_eq!(c.users, LoadConfig::smoke().users);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        parse(&["--bogus"]);
    }

    #[test]
    fn crash_flags_parse() {
        let (c, mode) = parse(&[
            "--artifact",
            "/tmp/base.mlps",
            "--kill-after",
            "1.5",
            "--compact-bytes",
            "4096",
            "--recover",
        ]);
        assert_eq!(mode, LoadMode::Recover);
        assert_eq!(c.artifact.as_deref(), Some("/tmp/base.mlps"));
        assert_eq!(c.kill_after, Some(1.5));
        assert_eq!(c.compact_bytes, 4096);
        assert!(c.banner().contains("artifact=/tmp/base.mlps"));
        assert!(c.banner().contains("kill_after=1.5"));
    }

    #[test]
    #[should_panic(expected = "--recover requires --artifact")]
    fn recover_without_artifact_panics() {
        parse(&["--recover"]);
    }

    #[test]
    fn tiny_run_serves_without_errors() {
        // A deliberately minuscule closed loop — one client, no churn,
        // 50ms — proving the harness wiring end to end in debug CI time.
        let config = LoadConfig {
            users: 40,
            churn_pool: 8,
            clients: 1,
            seconds: 0.05,
            coalesce: 2,
            churn: false,
            train_iters: 2,
            ..LoadConfig::default()
        };
        let report = run(&config).unwrap();
        assert_eq!(report.errors, 0);
        assert!(report.requests > 0, "a 50ms window must serve something");
        assert_eq!(report.latency.count(), report.requests);
        assert!(report.summary().contains("qps="));
    }

    #[test]
    fn durable_run_then_recover_verifies_the_log() {
        // The uninterrupted version of the crash harness: a short durable
        // churn run leaves its committed waves in the sidecar log, and
        // `recover` must replay them to a posterior byte-identical to an
        // uninterrupted in-memory replay. (The killed version of this
        // round trip lives in the crash-recovery integration tests and
        // the CI smoke job — a unit test cannot abort its own process.)
        let dir = std::env::temp_dir().join(format!("mlp-load-recover-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let artifact = dir.join("base.mlps");
        let config = LoadConfig {
            users: 40,
            churn_pool: 8,
            clients: 1,
            seconds: 0.2,
            coalesce: 0,
            churn: true,
            churn_batch: 2,
            churn_pause: Duration::from_millis(2),
            train_iters: 2,
            artifact: Some(artifact.to_string_lossy().into_owned()),
            ..LoadConfig::default()
        };
        let report = run(&config).unwrap();
        assert_eq!(report.errors, 0);
        assert_eq!(report.churn_errors, 0);
        assert!(report.churn_refreshes > 0, "a 200ms window must commit at least one wave");

        let summary = recover(&config).unwrap();
        assert_eq!(summary.replayed_records, summary.waves);
        assert_eq!(summary.total_users, config.users + summary.waves * config.churn_batch);
        assert_eq!(summary.torn_bytes_dropped, 0, "a clean shutdown leaves no torn tail");
        assert!(summary.summary().contains("recover: replayed"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
