//! `Base` for relationship explanation (paper Sec. 5.3).
//!
//! "For a following relationship, it directly assigns users' home locations
//! as their location assignments in the relationship. It is a strong
//! baseline, as users are likely to follow others based on their home
//! locations. However, this method will not work for the cases where users
//! follow others based on their other locations."

use mlp_gazetteer::CityId;
use mlp_social::{Dataset, FollowEdge, UserId};

/// Explains every edge with its endpoints' home locations.
pub struct HomeExplainer {
    homes: Vec<Option<CityId>>,
}

impl HomeExplainer {
    /// Uses registered home locations only (unlabeled endpoints get no
    /// explanation).
    pub fn from_registered(dataset: &Dataset) -> Self {
        Self { homes: dataset.registered.clone() }
    }

    /// Uses an arbitrary home map — e.g. registered locations backfilled
    /// with a predictor's estimates, which is how the paper's comparison
    /// applies it to users whose homes are known.
    pub fn from_homes(homes: Vec<Option<CityId>>) -> Self {
        Self { homes }
    }

    /// The assignment `(x, y)` for an edge: both endpoints' homes.
    /// `None` if either endpoint has no home available.
    pub fn explain(&self, edge: &FollowEdge) -> Option<(CityId, CityId)> {
        let x = self.homes[edge.follower.index()]?;
        let y = self.homes[edge.friend.index()]?;
        Some((x, y))
    }

    /// The home this explainer would use for `user`.
    pub fn home(&self, user: UserId) -> Option<CityId> {
        self.homes[user.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explains_with_both_homes() {
        let mut d = Dataset::new(3);
        d.registered[0] = Some(CityId(4));
        d.registered[1] = Some(CityId(9));
        let e = FollowEdge { follower: UserId(0), friend: UserId(1) };
        let b = HomeExplainer::from_registered(&d);
        assert_eq!(b.explain(&e), Some((CityId(4), CityId(9))));
    }

    #[test]
    fn missing_home_yields_none() {
        let mut d = Dataset::new(3);
        d.registered[0] = Some(CityId(4));
        let e = FollowEdge { follower: UserId(0), friend: UserId(2) };
        let b = HomeExplainer::from_registered(&d);
        assert_eq!(b.explain(&e), None);
    }

    #[test]
    fn custom_home_map() {
        let homes = vec![Some(CityId(1)), None, Some(CityId(2))];
        let b = HomeExplainer::from_homes(homes);
        assert_eq!(b.home(UserId(0)), Some(CityId(1)));
        assert_eq!(b.home(UserId(1)), None);
        let e = FollowEdge { follower: UserId(0), friend: UserId(2) };
        assert_eq!(b.explain(&e), Some((CityId(1), CityId(2))));
    }
}
