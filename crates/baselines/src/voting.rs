//! Relational-neighbor majority voting — the collective-classification
//! strawman from the paper's Related Work (Macskassy & Provost's wvRN).
//!
//! "Given a user who has three friends in New York, Los Angeles and Santa
//! Monica respectively, a voting-based classifier assigns the user to the
//! three locations with the same probability. If we capture that Los
//! Angeles and Santa Monica are close, we are able to assign the user to
//! the Los Angeles area." This classifier exists exactly to demonstrate
//! that failure mode in the ablation bench.

use crate::HomePredictor;
use mlp_gazetteer::CityId;
use mlp_social::{Adjacency, Dataset, UserId};
use std::collections::HashMap;

/// Majority vote over labeled neighbors, distance-blind.
pub struct VotingClassifier<'a> {
    dataset: &'a Dataset,
    adj: Adjacency,
}

impl<'a> VotingClassifier<'a> {
    /// Binds the classifier to a dataset (no fitting needed).
    pub fn new(dataset: &'a Dataset) -> Self {
        Self { dataset, adj: Adjacency::build(dataset) }
    }

    fn votes(&self, user: UserId) -> Vec<(CityId, u32)> {
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for &s in self.adj.out_edges(user) {
            let friend = self.dataset.edges[s as usize].friend;
            if let Some(c) = self.dataset.registered[friend.index()] {
                *counts.entry(c.0).or_insert(0) += 1;
            }
        }
        for &s in self.adj.in_edges(user) {
            let follower = self.dataset.edges[s as usize].follower;
            if let Some(c) = self.dataset.registered[follower.index()] {
                *counts.entry(c.0).or_insert(0) += 1;
            }
        }
        let mut votes: Vec<(CityId, u32)> =
            counts.into_iter().map(|(c, n)| (CityId(c), n)).collect();
        votes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        votes
    }
}

impl HomePredictor for VotingClassifier<'_> {
    fn predict_home(&self, user: UserId) -> Option<CityId> {
        self.votes(user).first().map(|&(c, _)| c)
    }

    fn predict_ranked(&self, user: UserId, k: usize) -> Vec<CityId> {
        self.votes(user).into_iter().take(k).map(|(c, _)| c).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_gazetteer::Gazetteer;
    use mlp_social::FollowEdge;

    #[test]
    fn majority_wins() {
        let gaz = Gazetteer::us_cities();
        let la = gaz.city_by_name_state("los angeles", "CA").unwrap();
        let nyc = gaz.city_by_name_state("new york", "NY").unwrap();
        let mut d = Dataset::new(4);
        for (i, c) in [(1u32, la), (2, la), (3, nyc)] {
            d.registered[i as usize] = Some(c);
            d.edges.push(FollowEdge { follower: UserId(0), friend: UserId(i) });
        }
        let v = VotingClassifier::new(&d);
        assert_eq!(v.predict_home(UserId(0)), Some(la));
        assert_eq!(v.predict_ranked(UserId(0), 2), vec![la, nyc]);
    }

    #[test]
    fn distance_blindness_failure_mode() {
        // The paper's exact example: one friend each in NYC, LA, and Santa
        // Monica. Voting ties at 1-1-1 and cannot exploit LA ≈ Santa Monica;
        // the deterministic tie-break picks the lowest CityId — which is NYC
        // in our table order. A distance-aware method would pick the LA area.
        let gaz = Gazetteer::us_cities();
        let la = gaz.city_by_name_state("los angeles", "CA").unwrap();
        let nyc = gaz.city_by_name_state("new york", "NY").unwrap();
        let sm = gaz.city_by_name_state("santa monica", "CA").unwrap();
        let mut d = Dataset::new(4);
        for (i, c) in [(1u32, nyc), (2, la), (3, sm)] {
            d.registered[i as usize] = Some(c);
            d.edges.push(FollowEdge { follower: UserId(0), friend: UserId(i) });
        }
        let v = VotingClassifier::new(&d);
        let pred = v.predict_home(UserId(0)).unwrap();
        assert_eq!(pred, nyc, "tie-break by id exposes distance blindness");
    }

    #[test]
    fn followers_count_too() {
        let gaz = Gazetteer::us_cities();
        let austin = gaz.city_by_name_state("austin", "TX").unwrap();
        let mut d = Dataset::new(2);
        d.registered[1] = Some(austin);
        d.edges.push(FollowEdge { follower: UserId(1), friend: UserId(0) });
        let v = VotingClassifier::new(&d);
        assert_eq!(v.predict_home(UserId(0)), Some(austin));
    }

    #[test]
    fn isolated_user_gets_none() {
        let d = Dataset::new(2);
        let v = VotingClassifier::new(&d);
        assert_eq!(v.predict_home(UserId(0)), None);
    }
}
