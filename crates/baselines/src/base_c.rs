//! `BaseC` — Cheng, Caverlee & Lee (CIKM 2010), the paper's content
//! baseline.
//!
//! The original estimates `p(city | user)` from the words in a user's
//! tweets, restricted to *local words* — words whose usage concentrates
//! geographically ("houston" is local, "lol" is not). The MLP paper notes
//! that BaseC "requires human labeling to train a model to select local
//! words, and BaseC's performance highly depends on the selected words";
//! it reports a 35.98–49.67% ACC@100 range over word sets. We implement
//! the selection with the *spatial focus* heuristic: a venue word is local
//! when a sufficiently large share of its training-set usage falls within
//! `focus_radius` miles of its modal city.
//!
//! Prediction: `score(l | u) = Σ_{w ∈ tweets(u), w local} n_u(w) · p(l | w)`
//! with optional neighborhood smoothing (Cheng et al.'s lattice smoothing,
//! transplanted to city granularity), predicting the argmax city.

use crate::HomePredictor;
use mlp_gazetteer::{CityId, Gazetteer, VenueId};
use mlp_social::{Adjacency, Dataset, UserId};
use std::collections::HashMap;

/// Fitting/prediction knobs for [`BaseC`].
#[derive(Debug, Clone)]
pub struct BaseCConfig {
    /// Minimum training mentions for a word to be considered at all.
    pub min_count: u32,
    /// Share of a word's usage that must fall within `focus_radius` of its
    /// modal city for the word to count as local.
    pub focus_threshold: f64,
    /// Radius (miles) defining "near the modal city".
    pub focus_radius: f64,
    /// Whether to smooth `p(l|w)` over cities within `smoothing_radius`.
    pub spatial_smoothing: bool,
    /// Radius (miles) for the smoothing neighborhood.
    pub smoothing_radius: f64,
    /// Weight of neighbor mass relative to own mass during smoothing.
    pub smoothing_weight: f64,
}

impl Default for BaseCConfig {
    fn default() -> Self {
        Self {
            min_count: 5,
            focus_threshold: 0.5,
            focus_radius: 100.0,
            spatial_smoothing: true,
            smoothing_radius: 50.0,
            smoothing_weight: 0.3,
        }
    }
}

/// The fitted content classifier.
pub struct BaseC<'a> {
    dataset: &'a Dataset,
    adj: Adjacency,
    /// `p(l | w)` for each local word, sparse over cities.
    word_city_probs: HashMap<u32, Vec<(CityId, f64)>>,
    /// Number of words that passed the locality filter.
    num_local_words: usize,
}

impl<'a> BaseC<'a> {
    /// Learns word→city distributions from labeled users and selects local
    /// words by spatial focus.
    pub fn fit(gaz: &Gazetteer, dataset: &'a Dataset, config: &BaseCConfig) -> Self {
        // count[w][l]: venue w tweeted by a user registered at l.
        let mut counts: HashMap<u32, HashMap<u32, u32>> = HashMap::new();
        for m in &dataset.mentions {
            if let Some(home) = dataset.registered[m.user.index()] {
                *counts.entry(m.venue.0).or_default().entry(home.0).or_insert(0) += 1;
            }
        }

        let mut word_city_probs = HashMap::new();
        for (w, city_counts) in counts {
            let total: u32 = city_counts.values().sum();
            if total < config.min_count {
                continue;
            }
            // Modal city and the share of usage near it.
            let (&modal, _) = city_counts
                .iter()
                .max_by_key(|&(c, &n)| (n, std::cmp::Reverse(*c)))
                .expect("non-empty");
            let near_modal: u32 = city_counts
                .iter()
                .filter(|&(&c, _)| gaz.distance(CityId(modal), CityId(c)) <= config.focus_radius)
                .map(|(_, &n)| n)
                .sum();
            if (near_modal as f64 / total as f64) < config.focus_threshold {
                continue; // not geographically focused → not a local word
            }
            let mut probs: Vec<(CityId, f64)> = city_counts
                .into_iter()
                .map(|(c, n)| (CityId(c), n as f64 / total as f64))
                .collect();
            probs.sort_by_key(|a| a.0);
            if config.spatial_smoothing {
                probs = smooth(gaz, &probs, config.smoothing_radius, config.smoothing_weight);
            }
            word_city_probs.insert(w, probs);
        }
        let num_local_words = word_city_probs.len();
        Self { dataset, adj: Adjacency::build(dataset), word_city_probs, num_local_words }
    }

    /// How many words survived the locality filter.
    pub fn num_local_words(&self) -> usize {
        self.num_local_words
    }

    /// Whether the classifier treats `venue` as a local word.
    pub fn is_local_word(&self, venue: VenueId) -> bool {
        self.word_city_probs.contains_key(&venue.0)
    }

    fn ranked(&self, user: UserId) -> Vec<(CityId, f64)> {
        let mut scores: HashMap<u32, f64> = HashMap::new();
        for &k in self.adj.mentions_of(user) {
            let venue = self.dataset.mentions[k as usize].venue;
            if let Some(probs) = self.word_city_probs.get(&venue.0) {
                for &(c, p) in probs {
                    *scores.entry(c.0).or_insert(0.0) += p;
                }
            }
        }
        let mut ranked: Vec<(CityId, f64)> =
            scores.into_iter().map(|(c, s)| (CityId(c), s)).collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
    }
}

impl HomePredictor for BaseC<'_> {
    fn predict_home(&self, user: UserId) -> Option<CityId> {
        self.ranked(user).first().map(|&(c, _)| c)
    }

    fn predict_ranked(&self, user: UserId, k: usize) -> Vec<CityId> {
        self.ranked(user).into_iter().take(k).map(|(c, _)| c).collect()
    }
}

/// City-granularity neighborhood smoothing: each city's mass is augmented
/// by `weight ×` the mass of cities within `radius` miles, renormalised.
fn smooth(
    gaz: &Gazetteer,
    probs: &[(CityId, f64)],
    radius: f64,
    weight: f64,
) -> Vec<(CityId, f64)> {
    let mut out: HashMap<u32, f64> = probs.iter().map(|&(c, p)| (c.0, p)).collect();
    for &(c, p) in probs {
        for n in gaz.cities_within(c, radius) {
            if n != c {
                *out.entry(n.0).or_insert(0.0) += weight * p;
            }
        }
    }
    let total: f64 = out.values().sum();
    let mut smoothed: Vec<(CityId, f64)> =
        out.into_iter().map(|(c, p)| (CityId(c), p / total)).collect();
    smoothed.sort_by_key(|a| a.0);
    smoothed
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_social::{Generator, GeneratorConfig, TweetMention};

    #[test]
    fn local_words_are_selected_and_ambiguous_ones_can_fail_focus() {
        let gaz = Gazetteer::us_cities();
        let austin = gaz.city_by_name_state("austin", "TX").unwrap();
        let mut d = Dataset::new(20);
        let v_austin = gaz.venue_by_name("austin").unwrap();
        let v_princeton = gaz.venue_by_name("princeton").unwrap();
        let princetons = gaz.cities_named("princeton").to_vec();
        // Ten users in Austin tweet "austin"; ten users spread across the
        // Princetons tweet "princeton".
        for i in 0..10u32 {
            d.registered[i as usize] = Some(austin);
            d.mentions.push(TweetMention { user: UserId(i), venue: v_austin });
        }
        for i in 10..20u32 {
            d.registered[i as usize] = Some(princetons[(i as usize) % princetons.len()]);
            d.mentions.push(TweetMention { user: UserId(i), venue: v_princeton });
        }
        let base_c = BaseC::fit(&gaz, &d, &BaseCConfig::default());
        assert!(base_c.is_local_word(v_austin), "austin should be local");
        assert!(
            !base_c.is_local_word(v_princeton),
            "princeton usage is spread coast-to-coast; focus must fail"
        );
        assert_eq!(base_c.num_local_words(), 1);
    }

    #[test]
    fn predicts_from_local_words() {
        let gaz = Gazetteer::us_cities();
        let austin = gaz.city_by_name_state("austin", "TX").unwrap();
        let v_austin = gaz.venue_by_name("austin").unwrap();
        let mut d = Dataset::new(11);
        for i in 0..10u32 {
            d.registered[i as usize] = Some(austin);
            d.mentions.push(TweetMention { user: UserId(i), venue: v_austin });
        }
        // Unlabeled user 10 tweets "austin" twice.
        d.mentions.push(TweetMention { user: UserId(10), venue: v_austin });
        d.mentions.push(TweetMention { user: UserId(10), venue: v_austin });
        let base_c = BaseC::fit(&gaz, &d, &BaseCConfig::default());
        assert_eq!(base_c.predict_home(UserId(10)), Some(austin));
    }

    #[test]
    fn no_local_words_no_prediction() {
        let gaz = Gazetteer::us_cities();
        let d = Dataset::new(2);
        let base_c = BaseC::fit(&gaz, &d, &BaseCConfig::default());
        assert_eq!(base_c.predict_home(UserId(0)), None);
    }

    #[test]
    fn min_count_filters_rare_words() {
        let gaz = Gazetteer::us_cities();
        let austin = gaz.city_by_name_state("austin", "TX").unwrap();
        let v = gaz.venue_by_name("austin").unwrap();
        let mut d = Dataset::new(2);
        d.registered[0] = Some(austin);
        d.mentions.push(TweetMention { user: UserId(0), venue: v });
        let base_c = BaseC::fit(&gaz, &d, &BaseCConfig { min_count: 5, ..Default::default() });
        assert!(!base_c.is_local_word(v), "one mention is below min_count");
    }

    #[test]
    fn smoothing_spreads_mass_to_neighbors() {
        let gaz = Gazetteer::us_cities();
        let la = gaz.city_by_name_state("los angeles", "CA").unwrap();
        let santa_monica = gaz.city_by_name_state("santa monica", "CA").unwrap();
        let probs = vec![(la, 1.0)];
        let smoothed = smooth(&gaz, &probs, 50.0, 0.3);
        let sm_mass = smoothed.iter().find(|&&(c, _)| c == santa_monica).map(|&(_, p)| p);
        assert!(sm_mass.is_some_and(|p| p > 0.0), "Santa Monica should get smoothed mass");
        let total: f64 = smoothed.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn predicts_masked_users_above_chance() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 800, seed: 103, ..Default::default() },
        )
        .generate();
        let masked: Vec<UserId> = (0..160).map(UserId).collect();
        let train = data.dataset.mask_users(&masked);
        let base_c = BaseC::fit(&gaz, &train, &BaseCConfig::default());
        assert!(base_c.num_local_words() > 20, "got {}", base_c.num_local_words());
        let hits = masked
            .iter()
            .filter(|&&u| {
                base_c
                    .predict_home(u)
                    .is_some_and(|pred| gaz.distance(pred, data.truth.home(u)) <= 100.0)
            })
            .count();
        let acc = hits as f64 / masked.len() as f64;
        assert!(acc > 0.25, "BaseC ACC@100 {acc} (paper: 49.67% on real data)");
    }
}
