//! Baseline location predictors the paper compares against (Sec. 5,
//! "Methods").
//!
//! * [`BaseU`] — Backstrom, Sun & Marlow, *Find me if you can* (WWW 2010):
//!   friend-based maximum-likelihood home prediction with a fitted
//!   `a·(b+d)^{-c}` friendship-probability curve.
//! * [`BaseC`] — Cheng, Caverlee & Lee, *You are where you tweet* (CIKM
//!   2010): content-based classification over "local words" selected by
//!   spatial focus.
//! * [`VotingClassifier`] — the relational-neighbor majority vote from the
//!   collective-classification literature, the strawman the paper's Related
//!   Work dismisses because it cannot exploit distances between labels.
//! * [`HomeExplainer`] — the paper's `Base` for the relationship-explanation
//!   task (Sec. 5.3): assign each edge endpoint its home location.
//!
//! All baselines share the [`HomePredictor`] trait so the evaluation
//! harness can treat every method uniformly.

pub mod base_c;
pub mod base_u;
pub mod home_explainer;
pub mod voting;

pub use base_c::{BaseC, BaseCConfig};
pub use base_u::{BaseU, BaseUConfig, OffsetPowerLaw};
pub use home_explainer::HomeExplainer;
pub use voting::VotingClassifier;

use mlp_gazetteer::CityId;
use mlp_social::UserId;

/// A method that predicts a single home location per user — the shared
/// interface of the paper's Table 2 contestants.
pub trait HomePredictor {
    /// Predicts the home location of `user`, or `None` when the method has
    /// no usable signal for this user (such users count as errors in
    /// ACC@m, matching how the paper scores non-placements).
    fn predict_home(&self, user: UserId) -> Option<CityId>;

    /// Ranked location predictions, best first. Baselines that produce a
    /// single estimate return at most one entry; the default implementation
    /// wraps [`Self::predict_home`].
    fn predict_ranked(&self, user: UserId, k: usize) -> Vec<CityId> {
        if k == 0 {
            return Vec::new();
        }
        self.predict_home(user).into_iter().collect()
    }
}
