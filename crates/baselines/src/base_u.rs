//! `BaseU` — Backstrom, Sun & Marlow (WWW 2010), the paper's network
//! baseline.
//!
//! The original method (on Facebook) proceeds in two steps:
//!
//! 1. **learn** the probability of friendship as a function of distance,
//!    `p(d) = a·(b + d)^{-c}` — fitted here on the labeled-pair
//!    following-probability histogram, grid-searching the offset `b` and
//!    solving `(a, c)` by weighted least squares in log–log space;
//! 2. **predict** each user's location by maximum likelihood over his
//!    neighbors' known locations: `l̂_u = argmax_l Σ_{v ∈ N(u)} ln p(d(l,
//!    l_v))`, evaluating candidates at the neighbors' cities (the global
//!    optimum of the sum lies at one of them for a decaying kernel in
//!    practice, and this is the standard implementation).
//!
//! The crucial contrast with MLP: one location per user, no noise model, no
//! use of tweet content — so a user whose friends split between two metros
//! gets pulled to whichever side has more/closer friends (paper Tab. 4).

use crate::HomePredictor;
use mlp_gazetteer::{CityId, Gazetteer};
use mlp_social::{following_probability_histogram, Adjacency, Dataset, UserId};

/// The fitted friendship curve `p(d) = a·(b + d)^{-c}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OffsetPowerLaw {
    /// Scale.
    pub a: f64,
    /// Distance offset, miles (Backstrom et al. report b ≈ 5 on Facebook).
    pub b: f64,
    /// Decay exponent (≈ 1 on Facebook; shallower on Twitter per the paper).
    pub c: f64,
}

impl OffsetPowerLaw {
    /// Probability at distance `d`, capped into `(0, 1]`.
    #[inline]
    pub fn eval(&self, d: f64) -> f64 {
        (self.a * (self.b + d.max(0.0)).powf(-self.c)).clamp(f64::MIN_POSITIVE, 1.0)
    }

    /// Natural log of [`Self::eval`].
    #[inline]
    pub fn log_eval(&self, d: f64) -> f64 {
        self.eval(d).ln()
    }
}

/// Fitting/prediction knobs for [`BaseU`].
#[derive(Debug, Clone)]
pub struct BaseUConfig {
    /// Offsets `b` tried during the grid search.
    pub offsets: Vec<f64>,
    /// Histogram bucket width, miles.
    pub bucket_miles: f64,
    /// Minimum pairs per bucket for the bucket to inform the fit.
    pub min_bucket_trials: u64,
}

impl Default for BaseUConfig {
    fn default() -> Self {
        Self {
            offsets: vec![0.0, 1.0, 5.0, 10.0, 25.0, 50.0],
            bucket_miles: 25.0,
            min_bucket_trials: 10,
        }
    }
}

/// The fitted baseline, ready to predict.
pub struct BaseU<'a> {
    gaz: &'a Gazetteer,
    dataset: &'a Dataset,
    adj: Adjacency,
    /// The fitted curve (exposed for the Fig. 3(a)-style diagnostics).
    pub curve: OffsetPowerLaw,
}

impl<'a> BaseU<'a> {
    /// Learns the friendship curve from the labeled users of `dataset` and
    /// binds the predictor to it.
    pub fn fit(gaz: &'a Gazetteer, dataset: &'a Dataset, config: &BaseUConfig) -> Self {
        let hist = following_probability_histogram(dataset, gaz, config.bucket_miles, 3_200.0);
        let points = hist.weighted_curve(config.min_bucket_trials);
        let curve = fit_offset_power_law(&points, &config.offsets).unwrap_or(OffsetPowerLaw {
            // Backstrom et al.'s Facebook fit as the sparse-data fallback.
            a: 0.0019,
            b: 5.0,
            c: 1.05,
        });
        Self { gaz, dataset, adj: Adjacency::build(dataset), curve }
    }

    /// Labeled neighbor cities (friends and followers) of `user`.
    fn neighbor_cities(&self, user: UserId) -> Vec<CityId> {
        let mut cities = Vec::new();
        for &s in self.adj.out_edges(user) {
            let friend = self.dataset.edges[s as usize].friend;
            if let Some(c) = self.dataset.registered[friend.index()] {
                cities.push(c);
            }
        }
        for &s in self.adj.in_edges(user) {
            let follower = self.dataset.edges[s as usize].follower;
            if let Some(c) = self.dataset.registered[follower.index()] {
                cities.push(c);
            }
        }
        cities
    }

    /// Scores candidate `l`: Σ_neighbors ln p(d(l, l_v)).
    fn score(&self, candidate: CityId, neighbor_cities: &[CityId]) -> f64 {
        neighbor_cities.iter().map(|&v| self.curve.log_eval(self.gaz.distance(candidate, v))).sum()
    }

    /// Full ranked scoring over the distinct neighbor cities.
    fn ranked(&self, user: UserId) -> Vec<(CityId, f64)> {
        let neighbors = self.neighbor_cities(user);
        if neighbors.is_empty() {
            return Vec::new();
        }
        let mut candidates = neighbors.clone();
        candidates.sort_unstable();
        candidates.dedup();
        let mut scored: Vec<(CityId, f64)> =
            candidates.into_iter().map(|l| (l, self.score(l, &neighbors))).collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        scored
    }
}

impl HomePredictor for BaseU<'_> {
    fn predict_home(&self, user: UserId) -> Option<CityId> {
        self.ranked(user).first().map(|&(c, _)| c)
    }

    fn predict_ranked(&self, user: UserId, k: usize) -> Vec<CityId> {
        self.ranked(user).into_iter().take(k).map(|(c, _)| c).collect()
    }
}

/// Grid-search `b`, least-squares `(ln a, c)` per offset, pick the best
/// weighted residual. Returns `None` with fewer than 3 usable points.
fn fit_offset_power_law(points: &[(f64, f64, f64)], offsets: &[f64]) -> Option<OffsetPowerLaw> {
    let usable: Vec<(f64, f64, f64)> = points
        .iter()
        .copied()
        .filter(|&(d, p, w)| d >= 0.0 && p > 0.0 && p <= 1.0 && w > 0.0)
        .collect();
    if usable.len() < 3 {
        return None;
    }
    let mut best: Option<(f64, OffsetPowerLaw)> = None;
    for &b in offsets {
        let (mut n, mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0, 0.0, 0.0, 0.0);
        for &(d, p, w) in &usable {
            let x = (b + d).ln();
            let y = p.ln();
            n += w;
            sx += w * x;
            sy += w * y;
            sxx += w * x * x;
            sxy += w * x * y;
        }
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            continue;
        }
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        let candidate = OffsetPowerLaw { a: intercept.exp(), b, c: -slope };
        if !(candidate.c > 0.0) || !candidate.a.is_finite() {
            continue;
        }
        // Weighted squared residual in log space.
        let resid: f64 = usable
            .iter()
            .map(|&(d, p, w)| {
                let pred = intercept + slope * (b + d).ln();
                w * (p.ln() - pred).powi(2)
            })
            .sum();
        if best.as_ref().is_none_or(|(r, _)| resid < *r) {
            best = Some((resid, candidate));
        }
    }
    best.map(|(_, c)| c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_social::{Generator, GeneratorConfig};

    fn generate(n: usize, seed: u64) -> (Gazetteer, mlp_social::GeneratedData) {
        let gaz = Gazetteer::us_cities();
        let data =
            Generator::new(&gaz, GeneratorConfig { num_users: n, seed, ..Default::default() })
                .generate();
        (gaz, data)
    }

    #[test]
    fn offset_fit_recovers_known_curve() {
        let truth = OffsetPowerLaw { a: 0.01, b: 5.0, c: 1.0 };
        let points: Vec<(f64, f64, f64)> =
            (1..200).map(|i| (i as f64 * 10.0, truth.eval(i as f64 * 10.0), 100.0)).collect();
        let fit = fit_offset_power_law(&points, &[0.0, 5.0, 20.0]).unwrap();
        assert_eq!(fit.b, 5.0, "grid search should pick the true offset");
        assert!((fit.c - 1.0).abs() < 0.01, "c {}", fit.c);
        assert!((fit.a / 0.01 - 1.0).abs() < 0.05, "a {}", fit.a);
    }

    #[test]
    fn offset_fit_rejects_sparse_input() {
        assert!(fit_offset_power_law(&[(1.0, 0.1, 1.0)], &[0.0]).is_none());
        assert!(fit_offset_power_law(&[], &[0.0]).is_none());
    }

    #[test]
    fn curve_eval_is_decreasing_probability() {
        let c = OffsetPowerLaw { a: 0.01, b: 5.0, c: 1.0 };
        assert!(c.eval(1.0) > c.eval(100.0));
        assert!(c.eval(100.0) > c.eval(2_000.0));
        assert!(c.eval(0.0) <= 1.0);
        assert!(c.log_eval(50.0).is_finite());
    }

    #[test]
    fn predicts_masked_users_above_chance() {
        let (gaz, data) = generate(800, 101);
        let masked: Vec<UserId> = (0..160).map(UserId).collect();
        let train = data.dataset.mask_users(&masked);
        let base_u = BaseU::fit(&gaz, &train, &BaseUConfig::default());
        let mut hits = 0usize;
        let mut placed = 0usize;
        for &u in &masked {
            if let Some(pred) = base_u.predict_home(u) {
                placed += 1;
                if gaz.distance(pred, data.truth.home(u)) <= 100.0 {
                    hits += 1;
                }
            }
        }
        assert!(placed as f64 > 0.9 * masked.len() as f64, "placed {placed}");
        let acc = hits as f64 / masked.len() as f64;
        assert!(acc > 0.3, "BaseU ACC@100 {acc} (paper: 52% on real data)");
    }

    #[test]
    fn no_labeled_neighbors_means_no_prediction() {
        let gaz = Gazetteer::us_cities();
        let mut d = Dataset::new(3);
        d.registered[1] = Some(CityId(0));
        // User 0 follows only user 2, who is unlabeled.
        d.edges.push(mlp_social::FollowEdge { follower: UserId(0), friend: UserId(2) });
        let base_u = BaseU::fit(&gaz, &d, &BaseUConfig::default());
        assert_eq!(base_u.predict_home(UserId(0)), None);
        assert!(base_u.predict_ranked(UserId(0), 3).is_empty());
    }

    #[test]
    fn single_labeled_neighbor_is_predicted_verbatim() {
        let gaz = Gazetteer::us_cities();
        let austin = gaz.city_by_name_state("austin", "TX").unwrap();
        let mut d = Dataset::new(2);
        d.registered[1] = Some(austin);
        d.edges.push(mlp_social::FollowEdge { follower: UserId(0), friend: UserId(1) });
        let base_u = BaseU::fit(&gaz, &d, &BaseUConfig::default());
        assert_eq!(base_u.predict_home(UserId(0)), Some(austin));
    }

    #[test]
    fn majority_side_wins() {
        // Three friends in LA, one in NYC: prediction must be LA.
        let gaz = Gazetteer::us_cities();
        let la = gaz.city_by_name_state("los angeles", "CA").unwrap();
        let nyc = gaz.city_by_name_state("new york", "NY").unwrap();
        let mut d = Dataset::new(5);
        for (i, c) in [(1u32, la), (2, la), (3, la), (4, nyc)] {
            d.registered[i as usize] = Some(c);
            d.edges.push(mlp_social::FollowEdge { follower: UserId(0), friend: UserId(i) });
        }
        let base_u = BaseU::fit(&gaz, &d, &BaseUConfig::default());
        assert_eq!(base_u.predict_home(UserId(0)), Some(la));
        // Ranked output puts NYC second.
        assert_eq!(base_u.predict_ranked(UserId(0), 2), vec![la, nyc]);
    }
}
