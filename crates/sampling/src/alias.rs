//! Walker/Vose alias method for O(1) categorical sampling.
//!
//! The synthetic generator draws millions of venue mentions and home cities
//! from fixed distributions (venue popularity, city population). The alias
//! method pays O(n) setup once and then answers every draw with one uniform
//! and one comparison.

use crate::rng::Pcg64;

/// Precomputed alias table over `n` categories.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability per slot.
    prob: Vec<f64>,
    /// Alias category per slot.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds a table from non-negative weights (need not be normalised).
    ///
    /// Returns `None` if `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let n = weights.len();
        if n == 0 {
            return None;
        }
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return None;
            }
            total += w;
        }
        if total <= 0.0 {
            return None;
        }

        // Scale weights so the average slot is exactly 1.0.
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &w) in scaled.iter().enumerate() {
            if w < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Whatever remains (numerical leftovers) gets probability 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Some(Self { prob, alias })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    #[inline]
    pub fn sample(&self, rng: &mut Pcg64) -> usize {
        let slot = rng.next_bounded(self.prob.len());
        if rng.next_f64() < self.prob[slot] {
            slot
        } else {
            self.alias[slot] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_weights() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -0.1]).is_none());
        assert!(AliasTable::new(&[1.0, f64::NAN]).is_none());
        assert!(AliasTable::new(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn single_category_always_selected() {
        let t = AliasTable::new(&[3.0]).unwrap();
        let mut rng = Pcg64::new(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0, 0.0]).unwrap();
        let mut rng = Pcg64::new(2);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 0 || s == 2, "sampled zero-weight category {s}");
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = Pcg64::new(3);
        let n = 200_000;
        let mut counts = [0u32; 4];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / total;
            let got = counts[i] as f64 / n as f64;
            assert!((got - expect).abs() < 0.01, "cat {i}: got {got}, want {expect}");
        }
    }

    #[test]
    fn heavily_skewed_weights() {
        let t = AliasTable::new(&[1e-9, 1.0]).unwrap();
        let mut rng = Pcg64::new(4);
        let hits0 = (0..100_000).filter(|_| t.sample(&mut rng) == 0).count();
        assert!(hits0 < 10, "rare category drawn {hits0} times");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Chi-squared-style check: sampled frequencies converge to the
        /// normalised weights for arbitrary weight vectors.
        #[test]
        fn frequencies_converge(
            weights in prop::collection::vec(0.01f64..10.0, 2..12),
            seed in any::<u64>(),
        ) {
            let t = AliasTable::new(&weights).unwrap();
            let mut rng = Pcg64::new(seed);
            let n = 60_000;
            let mut counts = vec![0u32; weights.len()];
            for _ in 0..n {
                counts[t.sample(&mut rng)] += 1;
            }
            let total: f64 = weights.iter().sum();
            for (i, &w) in weights.iter().enumerate() {
                let expect = w / total;
                let got = counts[i] as f64 / n as f64;
                // Tolerance ~5 sigma of a binomial proportion.
                let sigma = (expect * (1.0 - expect) / n as f64).sqrt();
                prop_assert!((got - expect).abs() < 5.0 * sigma + 0.002,
                    "cat {} got {} want {}", i, got, expect);
            }
        }

        /// Every draw is a valid index.
        #[test]
        fn samples_in_range(
            weights in prop::collection::vec(0.0f64..5.0, 1..20),
            seed in any::<u64>(),
        ) {
            prop_assume!(weights.iter().sum::<f64>() > 0.0);
            let t = AliasTable::new(&weights).unwrap();
            let mut rng = Pcg64::new(seed);
            for _ in 0..1000 {
                prop_assert!(t.sample(&mut rng) < weights.len());
            }
        }
    }
}
