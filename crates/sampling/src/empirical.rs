//! Frequency-counted discrete distributions.
//!
//! The paper's random tweeting model `T_R` (Sec. 4.2) is the empirical
//! popularity of each venue: `p(t<i,j> | T_R) = Σ_x t<x,j> / K`. This module
//! provides that structure generically: accumulate counts, then query
//! probabilities, log-probabilities, and top-k items, or freeze into an
//! alias table for sampling.

use crate::alias::AliasTable;
use crate::rng::Pcg64;

/// A discrete distribution estimated from counts over `n` categories.
#[derive(Debug, Clone)]
pub struct EmpiricalDistribution {
    counts: Vec<u64>,
    total: u64,
}

impl EmpiricalDistribution {
    /// Creates an empty distribution over `n` categories.
    pub fn new(n: usize) -> Self {
        Self { counts: vec![0; n], total: 0 }
    }

    /// Builds directly from a count vector.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        let total = counts.iter().sum();
        Self { counts, total }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether there are zero categories.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Adds `k` observations of `category`.
    ///
    /// # Panics
    /// Panics if `category` is out of range.
    pub fn record(&mut self, category: usize, k: u64) {
        self.counts[category] += k;
        self.total += k;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw count of a category.
    pub fn count(&self, category: usize) -> u64 {
        self.counts[category]
    }

    /// Maximum-likelihood probability of `category` (0 if nothing recorded).
    #[inline]
    pub fn prob(&self, category: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts[category] as f64 / self.total as f64
    }

    /// Additively smoothed probability with pseudo-count `eps` per category.
    ///
    /// Used wherever a zero-probability category would send a log-likelihood
    /// to `-inf` (e.g. scoring a venue never seen in training).
    #[inline]
    pub fn smoothed_prob(&self, category: usize, eps: f64) -> f64 {
        let denom = self.total as f64 + eps * self.counts.len() as f64;
        (self.counts[category] as f64 + eps) / denom
    }

    /// Natural log of [`Self::smoothed_prob`].
    #[inline]
    pub fn smoothed_log_prob(&self, category: usize, eps: f64) -> f64 {
        self.smoothed_prob(category, eps).ln()
    }

    /// The `k` most frequent categories, most frequent first; ties broken by
    /// lower index for determinism.
    pub fn top_k(&self, k: usize) -> Vec<(usize, u64)> {
        let mut items: Vec<(usize, u64)> =
            self.counts.iter().copied().enumerate().filter(|&(_, c)| c > 0).collect();
        items.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        items.truncate(k);
        items
    }

    /// Shannon entropy (nats) of the ML distribution.
    pub fn entropy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let total = self.total as f64;
        self.counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total;
                -p * p.ln()
            })
            .sum()
    }

    /// Freezes the distribution into an alias table for O(1) sampling.
    ///
    /// Returns `None` if no observations have been recorded.
    pub fn to_alias_table(&self) -> Option<AliasTable> {
        let weights: Vec<f64> = self.counts.iter().map(|&c| c as f64).collect();
        AliasTable::new(&weights)
    }

    /// Draws a category directly (linear scan; prefer
    /// [`Self::to_alias_table`] for repeated draws).
    pub fn sample(&self, rng: &mut Pcg64) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let mut u = (rng.next_f64() * self.total as f64) as u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if u < c {
                return Some(i);
            }
            u -= c;
        }
        self.counts.iter().rposition(|&c| c > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_reflect_counts() {
        let mut d = EmpiricalDistribution::new(3);
        d.record(0, 1);
        d.record(2, 3);
        assert_eq!(d.total(), 4);
        assert_eq!(d.prob(0), 0.25);
        assert_eq!(d.prob(1), 0.0);
        assert_eq!(d.prob(2), 0.75);
    }

    #[test]
    fn smoothing_avoids_zeros() {
        let mut d = EmpiricalDistribution::new(4);
        d.record(0, 10);
        assert!(d.smoothed_prob(3, 0.5) > 0.0);
        assert!(d.smoothed_log_prob(3, 0.5).is_finite());
        // Smoothed probabilities still sum to 1.
        let sum: f64 = (0..4).map(|i| d.smoothed_prob(i, 0.5)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_ordering_and_tie_break() {
        let d = EmpiricalDistribution::from_counts(vec![5, 9, 5, 0, 2]);
        assert_eq!(d.top_k(3), vec![(1, 9), (0, 5), (2, 5)]);
        assert_eq!(d.top_k(10).len(), 4, "zero-count categories excluded");
    }

    #[test]
    fn entropy_bounds() {
        let uniform = EmpiricalDistribution::from_counts(vec![10, 10, 10, 10]);
        assert!((uniform.entropy() - (4.0f64).ln()).abs() < 1e-12);
        let point = EmpiricalDistribution::from_counts(vec![0, 100, 0]);
        assert_eq!(point.entropy(), 0.0);
        let empty = EmpiricalDistribution::new(3);
        assert_eq!(empty.entropy(), 0.0);
    }

    #[test]
    fn sample_matches_counts() {
        let d = EmpiricalDistribution::from_counts(vec![0, 30, 70]);
        let mut rng = Pcg64::new(61);
        let n = 50_000;
        let mut hits = [0u32; 3];
        for _ in 0..n {
            hits[d.sample(&mut rng).unwrap()] += 1;
        }
        assert_eq!(hits[0], 0);
        assert!((hits[2] as f64 / n as f64 - 0.7).abs() < 0.01);
    }

    #[test]
    fn empty_distribution_samples_none() {
        let d = EmpiricalDistribution::new(5);
        assert_eq!(d.sample(&mut Pcg64::new(1)), None);
        assert!(d.to_alias_table().is_none());
    }

    #[test]
    fn alias_table_agrees_with_direct_sampling() {
        let d = EmpiricalDistribution::from_counts(vec![1, 2, 3, 4]);
        let t = d.to_alias_table().unwrap();
        let mut rng = Pcg64::new(67);
        let n = 100_000;
        let mut hits = [0u32; 4];
        for _ in 0..n {
            hits[t.sample(&mut rng)] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            let got = h as f64 / n as f64;
            assert!((got - d.prob(i)).abs() < 0.01, "cat {i}");
        }
    }
}
