//! Uniform reservoir sampling.
//!
//! Fig. 3(a) of the paper is computed over ~2.5·10^10 labeled-user pairs.
//! Our observation harness streams pairs and keeps a uniform subsample when
//! the full cross product would be too large; reservoir sampling (Algorithm
//! R) does this in one pass with O(k) memory.

use crate::rng::Pcg64;

/// Draws a uniform sample of up to `k` items from `iter` in one pass.
///
/// If the iterator yields fewer than `k` items, all of them are returned.
/// The output order is arbitrary.
pub fn reservoir_sample<T, I>(rng: &mut Pcg64, iter: I, k: usize) -> Vec<T>
where
    I: IntoIterator<Item = T>,
{
    if k == 0 {
        return Vec::new();
    }
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    for (i, item) in iter.into_iter().enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = rng.next_bounded(i + 1);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fewer_items_than_k_keeps_all() {
        let mut rng = Pcg64::new(71);
        let mut got = reservoir_sample(&mut rng, 0..5, 10);
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn k_zero_is_empty() {
        let mut rng = Pcg64::new(73);
        assert!(reservoir_sample(&mut rng, 0..100, 0).is_empty());
    }

    #[test]
    fn sample_size_is_k() {
        let mut rng = Pcg64::new(79);
        assert_eq!(reservoir_sample(&mut rng, 0..1000, 32).len(), 32);
    }

    #[test]
    fn sampling_is_uniform() {
        // Each of 20 items should appear in a k=5 sample with p = 1/4.
        let mut rng = Pcg64::new(83);
        let trials = 40_000;
        let mut hits = [0u32; 20];
        for _ in 0..trials {
            for x in reservoir_sample(&mut rng, 0..20usize, 5) {
                hits[x] += 1;
            }
        }
        for (i, &h) in hits.iter().enumerate() {
            let rate = h as f64 / trials as f64;
            assert!((rate - 0.25).abs() < 0.02, "item {i} rate {rate}");
        }
    }
}
