//! One-shot categorical draws from unnormalised weights.
//!
//! The Gibbs conditionals (paper Eqs. 5–9) produce a fresh weight vector for
//! every relationship on every sweep — building an alias table would be
//! wasteful. These helpers draw directly from the weights in one pass, in
//! either linear or log space.

use crate::rng::Pcg64;

/// Draws an index proportional to `weights` (non-negative, unnormalised).
///
/// Returns `None` if the weights are empty, contain negatives/NaN, or sum to
/// zero.
#[inline]
pub fn sample_categorical(rng: &mut Pcg64, weights: &[f64]) -> Option<usize> {
    let mut total = 0.0f64;
    for &w in weights {
        if !(w >= 0.0) || !w.is_finite() {
            return None;
        }
        total += w;
    }
    if total <= 0.0 {
        return None;
    }
    let mut u = rng.next_f64() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u < 0.0 {
            return Some(i);
        }
    }
    // Floating-point slack: return the last positively weighted category.
    weights.iter().rposition(|&w| w > 0.0)
}

/// Numerically stable `log(Σ exp(x_i))`.
///
/// Returns `-inf` for an empty slice or all-`-inf` input.
#[inline]
pub fn log_sum_exp(log_weights: &[f64]) -> f64 {
    let max = log_weights.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = log_weights.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Draws an index proportional to `exp(log_weights)`, stably.
///
/// The Gibbs conditional for a location assignment multiplies a profile
/// pseudo-count by `d^α` (Eq. 7); with hundreds of candidate cities and
/// extreme distances the products underflow f64, so the sampler works with
/// logs and exponentiates relative to the max.
///
/// Returns `None` if every weight is `-inf` or the slice is empty.
#[inline]
pub fn sample_log_categorical(rng: &mut Pcg64, log_weights: &[f64]) -> Option<usize> {
    let max = log_weights.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return None;
    }
    let mut total = 0.0f64;
    for &lw in log_weights {
        total += (lw - max).exp();
    }
    let mut u = rng.next_f64() * total;
    for (i, &lw) in log_weights.iter().enumerate() {
        u -= (lw - max).exp();
        if u < 0.0 {
            return Some(i);
        }
    }
    log_weights.iter().rposition(|&lw| lw > f64::NEG_INFINITY)
}

/// Normalises `weights` in place to sum to one.
///
/// Returns `false` (leaving the slice untouched) if the sum is not positive
/// and finite.
pub fn normalize_in_place(weights: &mut [f64]) -> bool {
    let total: f64 = weights.iter().sum();
    if !(total > 0.0) || !total.is_finite() {
        return false;
    }
    for w in weights {
        *w /= total;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_respects_weights() {
        let mut rng = Pcg64::new(11);
        let weights = [0.0, 1.0, 3.0];
        let n = 100_000;
        let mut counts = [0u32; 3];
        for _ in 0..n {
            counts[sample_categorical(&mut rng, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    fn categorical_rejects_degenerate_input() {
        let mut rng = Pcg64::new(1);
        assert_eq!(sample_categorical(&mut rng, &[]), None);
        assert_eq!(sample_categorical(&mut rng, &[0.0, 0.0]), None);
        assert_eq!(sample_categorical(&mut rng, &[1.0, -1.0]), None);
        assert_eq!(sample_categorical(&mut rng, &[1.0, f64::NAN]), None);
    }

    #[test]
    fn log_sum_exp_matches_naive_when_safe() {
        let xs = [0.1f64, -0.5, 1.2];
        let naive: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_survives_extreme_magnitudes() {
        // exp(-1000) underflows; the stable version must not return -inf.
        let xs = [-1000.0, -1000.5, -999.5];
        let got = log_sum_exp(&xs);
        assert!(got.is_finite());
        assert!(
            (got - (-999.5 + ((0.0f64).exp() + (-1.0f64).exp() + (-0.5f64).exp()).ln())).abs()
                < 1e-9
        );
    }

    #[test]
    fn log_sum_exp_empty_is_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    fn log_categorical_matches_linear_distribution() {
        let mut rng = Pcg64::new(17);
        // weights 1:2:5 expressed in (shifted) log space
        let logs: Vec<f64> = [1.0f64, 2.0, 5.0].iter().map(|w| w.ln() - 700.0).collect();
        let n = 100_000;
        let mut counts = [0u32; 3];
        for _ in 0..n {
            counts[sample_log_categorical(&mut rng, &logs).unwrap()] += 1;
        }
        let total = n as f64;
        for (i, want) in [1.0 / 8.0, 2.0 / 8.0, 5.0 / 8.0].iter().enumerate() {
            let got = counts[i] as f64 / total;
            assert!((got - want).abs() < 0.01, "cat {i} got {got} want {want}");
        }
    }

    #[test]
    fn log_categorical_ignores_neg_inf_categories() {
        let mut rng = Pcg64::new(19);
        let logs = [f64::NEG_INFINITY, 0.0, f64::NEG_INFINITY];
        for _ in 0..1000 {
            assert_eq!(sample_log_categorical(&mut rng, &logs), Some(1));
        }
    }

    #[test]
    fn log_categorical_all_neg_inf_is_none() {
        let mut rng = Pcg64::new(23);
        assert_eq!(sample_log_categorical(&mut rng, &[f64::NEG_INFINITY, f64::NEG_INFINITY]), None);
        assert_eq!(sample_log_categorical(&mut rng, &[]), None);
    }

    #[test]
    fn normalize_in_place_works() {
        let mut w = [2.0, 2.0, 4.0];
        assert!(normalize_in_place(&mut w));
        assert_eq!(w, [0.25, 0.25, 0.5]);
        let mut z = [0.0, 0.0];
        assert!(!normalize_in_place(&mut z));
        assert_eq!(z, [0.0, 0.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Linear and log-space sampling agree in distribution.
        #[test]
        fn linear_and_log_space_agree(
            weights in prop::collection::vec(0.1f64..10.0, 2..8),
            seed in any::<u64>(),
        ) {
            let logs: Vec<f64> = weights.iter().map(|w| w.ln()).collect();
            let n = 30_000;
            let mut lin = vec![0f64; weights.len()];
            let mut log = vec![0f64; weights.len()];
            let mut rng_a = Pcg64::new(seed);
            let mut rng_b = Pcg64::new(seed ^ 0xABCD);
            for _ in 0..n {
                lin[sample_categorical(&mut rng_a, &weights).unwrap()] += 1.0;
                log[sample_log_categorical(&mut rng_b, &logs).unwrap()] += 1.0;
            }
            for i in 0..weights.len() {
                prop_assert!((lin[i] - log[i]).abs() / (n as f64) < 0.03,
                    "cat {}: lin {} log {}", i, lin[i], log[i]);
            }
        }

        /// log_sum_exp is invariant to a constant shift.
        #[test]
        fn lse_shift_invariance(
            xs in prop::collection::vec(-50.0f64..50.0, 1..10),
            shift in -500.0f64..500.0,
        ) {
            let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
            let a = log_sum_exp(&xs) + shift;
            let b = log_sum_exp(&shifted);
            prop_assert!((a - b).abs() < 1e-8, "{} vs {}", a, b);
        }
    }
}
