//! Stochastic substrate for the MLP location-profiling system.
//!
//! The Gibbs sampler (paper Sec. 4.5), the synthetic data generator, and the
//! baselines all need fast, *deterministic* random primitives. This crate
//! provides them on top of `rand`'s traits:
//!
//! * [`rng`] — a seedable, splittable deterministic RNG ([`SplitMix64`] for
//!   seeding, [`Pcg64`] as the workhorse generator) so every experiment in
//!   the repository is reproducible from a single `u64` seed.
//! * [`alias`] — Walker/Vose alias tables for O(1) draws from fixed
//!   categorical distributions (city populations, venue popularity).
//! * [`categorical`] — one-shot categorical draws from unnormalised weights,
//!   including the log-space variant the Gibbs conditionals need.
//! * [`gamma`] — Gamma / Beta / Dirichlet samplers (Marsaglia–Tsang), used to
//!   draw location profiles `θ_i ~ Dir(γ_i)` in the generator.
//! * [`empirical`] — frequency-counted discrete distributions (the random
//!   tweeting model `T_R` is exactly one of these).
//! * [`reservoir`] — uniform reservoir sampling for subsampling pair sets.

pub mod alias;
pub mod categorical;
pub mod empirical;
pub mod gamma;
pub mod reservoir;
pub mod rng;

pub use alias::AliasTable;
pub use categorical::{log_sum_exp, sample_categorical, sample_log_categorical};
pub use empirical::EmpiricalDistribution;
pub use gamma::{sample_beta, sample_dirichlet, sample_gamma, sample_poisson};
pub use reservoir::reservoir_sample;
pub use rng::{DeterministicRng, Pcg64, SplitMix64};
