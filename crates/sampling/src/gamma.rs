//! Gamma, Beta, and Dirichlet samplers.
//!
//! The generative process (paper Sec. 4.4) draws each user's location
//! profile `θ_i ~ Dirichlet(γ_i)` and each city's tweeting model
//! `ψ_l ~ Dirichlet(δ)`. A Dirichlet draw is a normalised vector of Gamma
//! draws, so we implement Marsaglia–Tsang squeeze sampling for Gamma(shape)
//! and build Beta and Dirichlet on top. Only `rand`'s core trait is used.

use crate::rng::Pcg64;

/// Draws from Gamma(shape, scale = 1) via Marsaglia–Tsang (2000).
///
/// Valid for any `shape > 0`; shapes below 1 use the boosting identity
/// `Gamma(a) = Gamma(a + 1) · U^{1/a}`.
///
/// # Panics
/// Panics if `shape` is not strictly positive and finite.
pub fn sample_gamma(rng: &mut Pcg64, shape: f64) -> f64 {
    assert!(shape > 0.0 && shape.is_finite(), "shape must be positive, got {shape}");
    if shape < 1.0 {
        // Boost: draw Gamma(shape+1) and scale by U^(1/shape).
        let g = sample_gamma(rng, shape + 1.0);
        let u: f64 = rng.next_f64().max(f64::MIN_POSITIVE);
        return g * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller (cheap enough here; the sampler is
        // not on the Gibbs hot path).
        let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
        let u2 = rng.next_f64();
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u = rng.next_f64();
        // Squeeze test, then full acceptance test.
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Draws from Beta(a, b).
///
/// # Panics
/// Panics if either parameter is not strictly positive and finite.
pub fn sample_beta(rng: &mut Pcg64, a: f64, b: f64) -> f64 {
    let x = sample_gamma(rng, a);
    let y = sample_gamma(rng, b);
    if x + y == 0.0 {
        // Only reachable for extremely small parameters that underflow.
        return 0.5;
    }
    x / (x + y)
}

/// Draws from Dirichlet(alphas), returning a probability vector.
///
/// Dimensions with `alpha = 0` are allowed and receive exactly zero mass
/// (this is how candidacy-vector pruning enters the generator: non-candidate
/// cities have a zero prior and can never appear in a profile).
///
/// # Panics
/// Panics if `alphas` is empty, any entry is negative/non-finite, or all
/// entries are zero.
pub fn sample_dirichlet(rng: &mut Pcg64, alphas: &[f64]) -> Vec<f64> {
    assert!(!alphas.is_empty(), "Dirichlet needs at least one dimension");
    let mut out = Vec::with_capacity(alphas.len());
    let mut total = 0.0f64;
    for &a in alphas {
        assert!(a >= 0.0 && a.is_finite(), "alpha must be non-negative, got {a}");
        let g = if a == 0.0 { 0.0 } else { sample_gamma(rng, a) };
        total += g;
        out.push(g);
    }
    assert!(total > 0.0, "at least one alpha must be positive");
    for g in &mut out {
        *g /= total;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_var(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let mut rng = Pcg64::new(31);
        let shape = 3.5;
        let samples: Vec<f64> = (0..100_000).map(|_| sample_gamma(&mut rng, shape)).collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - shape).abs() < 0.05, "mean {mean}");
        assert!((var - shape).abs() < 0.2, "var {var}");
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let mut rng = Pcg64::new(37);
        let shape = 0.3;
        let samples: Vec<f64> = (0..100_000).map(|_| sample_gamma(&mut rng, shape)).collect();
        let (mean, var) = mean_var(&samples);
        assert!((mean - shape).abs() < 0.02, "mean {mean}");
        assert!((var - shape).abs() < 0.1, "var {var}");
    }

    #[test]
    fn gamma_is_positive() {
        let mut rng = Pcg64::new(41);
        for shape in [0.1, 0.5, 1.0, 2.0, 10.0] {
            for _ in 0..1000 {
                assert!(sample_gamma(&mut rng, shape) > 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn gamma_rejects_zero_shape() {
        sample_gamma(&mut Pcg64::new(1), 0.0);
    }

    #[test]
    fn beta_moments() {
        let mut rng = Pcg64::new(43);
        let (a, b) = (2.0, 5.0);
        let samples: Vec<f64> = (0..100_000).map(|_| sample_beta(&mut rng, a, b)).collect();
        let (mean, _) = mean_var(&samples);
        let expect = a / (a + b);
        assert!((mean - expect).abs() < 0.005, "mean {mean} want {expect}");
        assert!(samples.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn dirichlet_sums_to_one_and_matches_mean() {
        let mut rng = Pcg64::new(47);
        let alphas = [1.0, 2.0, 7.0];
        let n = 50_000;
        let mut mean = [0.0f64; 3];
        for _ in 0..n {
            let draw = sample_dirichlet(&mut rng, &alphas);
            let sum: f64 = draw.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            for (m, d) in mean.iter_mut().zip(&draw) {
                *m += d;
            }
        }
        let total: f64 = alphas.iter().sum();
        for i in 0..3 {
            let got = mean[i] / n as f64;
            let want = alphas[i] / total;
            assert!((got - want).abs() < 0.005, "dim {i} got {got} want {want}");
        }
    }

    #[test]
    fn dirichlet_zero_alpha_gets_zero_mass() {
        let mut rng = Pcg64::new(53);
        for _ in 0..1000 {
            let draw = sample_dirichlet(&mut rng, &[2.0, 0.0, 1.0]);
            assert_eq!(draw[1], 0.0);
        }
    }

    #[test]
    fn dirichlet_sparse_prior_concentrates() {
        // Small symmetric alpha (the paper uses τ = 0.1) should yield sparse
        // profiles: most draws put >80% mass on one dimension.
        let mut rng = Pcg64::new(59);
        let alphas = [0.1; 5];
        let sparse = (0..2000)
            .filter(|_| {
                let draw = sample_dirichlet(&mut rng, &alphas);
                draw.iter().cloned().fold(0.0, f64::max) > 0.8
            })
            .count();
        assert!(sparse > 1000, "only {sparse}/2000 draws were sparse");
    }

    #[test]
    #[should_panic(expected = "at least one alpha must be positive")]
    fn dirichlet_all_zero_panics() {
        sample_dirichlet(&mut Pcg64::new(1), &[0.0, 0.0]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Gamma sample mean tracks the shape parameter.
        #[test]
        fn gamma_mean_tracks_shape(shape in 0.2f64..8.0, seed in any::<u64>()) {
            let mut rng = Pcg64::new(seed);
            let n = 30_000;
            let mean: f64 = (0..n).map(|_| sample_gamma(&mut rng, shape)).sum::<f64>() / n as f64;
            // 6-sigma tolerance: sd of the mean is sqrt(shape/n).
            let tol = 6.0 * (shape / n as f64).sqrt() + 0.01;
            prop_assert!((mean - shape).abs() < tol, "mean {} shape {}", mean, shape);
        }

        /// Dirichlet draws are valid probability vectors.
        #[test]
        fn dirichlet_is_simplex(
            alphas in prop::collection::vec(0.05f64..5.0, 2..10),
            seed in any::<u64>(),
        ) {
            let mut rng = Pcg64::new(seed);
            let draw = sample_dirichlet(&mut rng, &alphas);
            prop_assert_eq!(draw.len(), alphas.len());
            prop_assert!(draw.iter().all(|&x| (0.0..=1.0).contains(&x)));
            prop_assert!((draw.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}

/// Draws from Poisson(lambda) — Knuth's product-of-uniforms for small
/// lambda, normal approximation with continuity correction above 30 (the
/// generator uses lambda ≈ 15–30 for per-user relationship counts).
///
/// # Panics
/// Panics if `lambda` is not strictly positive and finite.
pub fn sample_poisson(rng: &mut Pcg64, lambda: f64) -> u64 {
    assert!(lambda > 0.0 && lambda.is_finite(), "lambda must be positive, got {lambda}");
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.next_f64();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    } else {
        // Normal approximation: N(lambda, lambda), rounded, floored at 0.
        let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
        let u2 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let x = lambda + lambda.sqrt() * z;
        x.round().max(0.0) as u64
    }
}

#[cfg(test)]
mod poisson_tests {
    use super::*;

    #[test]
    fn poisson_small_lambda_moments() {
        let mut rng = Pcg64::new(101);
        let lambda = 5.0;
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_poisson(&mut rng, lambda) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() < 0.05, "mean {mean}");
        assert!((var - lambda).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_large_lambda_moments() {
        let mut rng = Pcg64::new(103);
        let lambda = 100.0;
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_poisson(&mut rng, lambda) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - lambda).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn poisson_paper_scale_lambda() {
        // The generator's lambda ≈ 14.8 (friends) and 29 (venues).
        let mut rng = Pcg64::new(107);
        for lambda in [14.8, 29.0] {
            let n = 50_000;
            let mean: f64 =
                (0..n).map(|_| sample_poisson(&mut rng, lambda) as f64).sum::<f64>() / n as f64;
            assert!((mean - lambda).abs() < 0.2, "lambda {lambda} mean {mean}");
        }
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn poisson_rejects_zero() {
        sample_poisson(&mut Pcg64::new(1), 0.0);
    }
}
