//! Deterministic, splittable random number generation.
//!
//! Every experiment in this repository must be exactly reproducible from a
//! single `u64` seed (EXPERIMENTS.md records seeds next to results). We use
//! [`SplitMix64`] to derive independent sub-seeds (it is the standard seeding
//! function for this purpose, with provably full-period output) and a PCG
//! XSL-RR 128/64 generator as the workhorse stream.

use rand::{Error, RngCore, SeedableRng};

/// The default deterministic generator used across the workspace.
pub type DeterministicRng = Pcg64;

/// SplitMix64: a tiny, full-period 64-bit generator.
///
/// Primarily used to expand one user-facing seed into many independent
/// sub-seeds (per-user, per-edge, per-fold), so adding a consumer of
/// randomness never perturbs the streams of existing consumers.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit output. (`next` is the canonical SplitMix64 operation
    /// name; this type is not an `Iterator`.)
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derives the `index`-th sub-seed of `root` without consuming state:
    /// a pure function of `(root, index)`.
    pub fn derive(root: u64, index: u64) -> u64 {
        let mut sm = SplitMix64::new(root ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
        sm.next()
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }
}

/// PCG XSL-RR 128/64: 128-bit state, 64-bit output.
///
/// Excellent statistical quality, 16 bytes of state, and much faster than
/// the `StdRng` default (ChaCha12) for simulation workloads. Implemented
/// locally to keep the dependency footprint at `rand` alone.
#[derive(Debug, Clone)]
pub struct Pcg64 {
    state: u128,
    inc: u128,
}

const PCG_MULT: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

impl Pcg64 {
    /// Creates a generator from a seed, using SplitMix64 to fill the state
    /// and pick an odd stream increment.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let state = ((sm.next() as u128) << 64) | sm.next() as u128;
        let inc = (((sm.next() as u128) << 64) | sm.next() as u128) | 1;
        let mut rng = Self { state, inc };
        // Warm up so low-entropy seeds do not produce correlated first draws.
        rng.next_u64();
        rng
    }

    #[inline]
    fn step(&mut self) -> u128 {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        self.state
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[0, bound)` via Lemire's multiply-shift rejection.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_bounded(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as usize;
            }
        }
    }

    /// Bernoulli draw with success probability `p` (clamped to \[0,1\]).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl RngCore for Pcg64 {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let state = self.step();
        // XSL-RR output function: xor-shift-low, random rotate.
        let rot = (state >> 122) as u32;
        let xored = ((state >> 64) as u64) ^ (state as u64);
        xored.rotate_right(rot)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        fill_bytes_via_u64(self, dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Pcg64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }
}

fn fill_bytes_via_u64<R: RngCore>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let rem = chunks.into_remainder();
    if !rem.is_empty() {
        let bytes = rng.next_u64().to_le_bytes();
        rem.copy_from_slice(&bytes[..rem.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Pcg64::new(42);
        let mut b = Pcg64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = Pcg64::new(1);
        let mut b = Pcg64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Pcg64::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_mean_is_half() {
        let mut rng = Pcg64::new(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bounded_is_uniform_and_in_range() {
        let mut rng = Pcg64::new(13);
        let bound = 10usize;
        let mut counts = vec![0u32; bound];
        let n = 100_000;
        for _ in 0..n {
            let x = rng.next_bounded(bound);
            counts[x] += 1;
        }
        let expect = n as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            assert!((c as f64 - expect).abs() < expect * 0.1, "bucket {i} count {c} vs {expect}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn bounded_zero_panics() {
        Pcg64::new(0).next_bounded(0);
    }

    #[test]
    fn bernoulli_matches_probability() {
        let mut rng = Pcg64::new(21);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn derive_is_pure_and_spread() {
        assert_eq!(SplitMix64::derive(5, 0), SplitMix64::derive(5, 0));
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            seen.insert(SplitMix64::derive(5, i));
        }
        assert_eq!(seen.len(), 1000, "derived seeds must not collide");
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut rng = Pcg64::new(3);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} all zero");
            }
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values from the canonical SplitMix64 implementation
        // (Vigna), seed = 0.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next(), 0x06C4_5D18_8009_454F);
    }
}
