//! Property tests for the sampling substrate, centred on the guarantees the
//! parallel Gibbs driver leans on:
//!
//! * the alias table and the naive categorical sampler draw from the *same*
//!   distribution (the sweep uses the naive sampler on small candidate
//!   lists; other components use alias tables over the same weights);
//! * `SplitMix64::derive` chunk seeds yield `Pcg64` streams that are
//!   pairwise distinct and uncorrelated — the independence assumption
//!   behind giving every (sweep, chunk) pair its own RNG.

use mlp_sampling::{sample_categorical, AliasTable, Pcg64, SplitMix64};
use proptest::prelude::*;
use rand::RngCore;

/// Empirical distribution over `k` categories from `n` draws.
fn empirical(mut draw: impl FnMut() -> usize, k: usize, n: usize) -> Vec<f64> {
    let mut counts = vec![0u64; k];
    for _ in 0..n {
        counts[draw()] += 1;
    }
    counts.into_iter().map(|c| c as f64 / n as f64).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Alias-table sampling and naive categorical sampling agree in
    /// distribution on arbitrary positive weight vectors.
    #[test]
    fn alias_table_agrees_with_naive_categorical(
        weights in prop::collection::vec(0.05f64..10.0, 2..12),
        seed in any::<u64>(),
    ) {
        let k = weights.len();
        let n = 60_000usize;
        let table = AliasTable::new(&weights).expect("positive weights");

        let mut rng_a = Pcg64::new(SplitMix64::derive(seed, 1));
        let alias_dist = empirical(|| table.sample(&mut rng_a), k, n);

        let mut rng_b = Pcg64::new(SplitMix64::derive(seed, 2));
        let naive_dist = empirical(
            || sample_categorical(&mut rng_b, &weights).expect("positive weights"),
            k,
            n,
        );

        let total: f64 = weights.iter().sum();
        for c in 0..k {
            let expect = weights[c] / total;
            // Three-sigma binomial tolerance plus a small absolute floor.
            let sigma = (expect * (1.0 - expect) / n as f64).sqrt();
            let tol = 4.0 * sigma + 0.004;
            prop_assert!(
                (alias_dist[c] - expect).abs() < tol,
                "alias category {c}: {} vs expected {expect}",
                alias_dist[c],
            );
            prop_assert!(
                (naive_dist[c] - expect).abs() < tol,
                "naive category {c}: {} vs expected {expect}",
                naive_dist[c],
            );
            prop_assert!(
                (alias_dist[c] - naive_dist[c]).abs() < 2.0 * tol,
                "samplers disagree on category {c}: {} vs {}",
                alias_dist[c],
                naive_dist[c],
            );
        }
    }

    /// Chunk seeds derived the way `parallel_sweep` derives them (root seed
    /// x sweep index x chunk index) never collide, and the resulting Pcg64
    /// streams share no outputs in a long prefix.
    #[test]
    fn chunk_seed_streams_are_independent(root in any::<u64>()) {
        let mut seeds = std::collections::HashSet::new();
        let mut streams: Vec<Pcg64> = Vec::new();
        for sweep in 0..8u64 {
            for chunk in 0..8u64 {
                // Mirrors crates/mlp-core/src/parallel.rs.
                let seed =
                    SplitMix64::derive(root, 0xE000_0000_0000_0000 ^ (sweep << 32) ^ chunk);
                prop_assert!(seeds.insert(seed), "seed collision at sweep {sweep} chunk {chunk}");
                streams.push(Pcg64::new(seed));
            }
        }
        // Draw a prefix from every stream; all values must be distinct
        // across streams (64-bit collisions in 64 x 64 draws are
        // astronomically unlikely for independent streams).
        let mut seen = std::collections::HashSet::new();
        for stream in &mut streams {
            for _ in 0..64 {
                seen.insert(stream.next_u64());
            }
        }
        prop_assert_eq!(seen.len(), streams.len() * 64, "cross-stream output collision");
    }

    /// The derived streams are also uncorrelated with the sequential
    /// sampler's own stream (same root seed, different derivation path).
    #[test]
    fn chunk_streams_do_not_echo_the_sequential_stream(root in any::<u64>()) {
        let mut sequential = Pcg64::new(SplitMix64::derive(root, 0x9B5));
        let seq_prefix: std::collections::HashSet<u64> =
            (0..256).map(|_| sequential.next_u64()).collect();
        for chunk in 0..8u64 {
            let mut stream =
                Pcg64::new(SplitMix64::derive(root, 0xE000_0000_0000_0000 ^ chunk));
            for _ in 0..256 {
                prop_assert!(
                    !seq_prefix.contains(&stream.next_u64()),
                    "chunk {chunk} stream reproduced a sequential-stream value",
                );
            }
        }
    }
}
