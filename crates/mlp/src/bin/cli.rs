//! `mlp-cli` — command-line front end for the MLP location-profiling
//! system.
//!
//! ```text
//! mlp-cli generate --users 2000 --seed 7 --out data.mlp     # synthesise a dataset
//! mlp-cli stats    --data data.mlp                          # crawl-style statistics
//! mlp-cli profile  --data data.mlp --user 42 [--iters 20]   # one user's profile
//! mlp-cli explain  --data data.mlp --user 42                # geo groups of a user
//! mlp-cli evaluate --data data.mlp [--folds 5]              # masked-home ACC@100
//! mlp-cli train    --data data.mlp --out model.mlps [--train-users N]
//! mlp-cli refresh  --data data.mlp --snapshot model.mlps --out fresh.mlps
//! mlp-cli inspect  --snapshot model.mlps                    # artifact + sidecar log
//! mlp-cli scenario --name migration-wave --users 400 --ticks 8
//! ```
//!
//! Datasets are the binary snapshot format of `mlp::social::codec` (the
//! gazetteer is rebuilt deterministically, so snapshots stay small). Use
//! the same `--cities` value when reading a snapshot as when it was
//! generated — city ids index the gazetteer, and a mismatch is rejected at
//! model construction.
//!
//! `train` and `refresh` both drive the [`ServingEngine`] facade: `train`
//! cold-trains and writes the serving artifact (`PosteriorSnapshot`,
//! format v4; `--train-users N` trains on the first `N` users only,
//! leaving the rest to arrive later); `refresh` thaws the artifact into an
//! engine and absorbs every dataset user beyond the trained count —
//! committing posterior deltas batch by batch, one published epoch per
//! commit, no retrain — then writes the refreshed artifact (base payload +
//! delta records).
//!
//! Every artifact write is atomic (temp file + fsync + rename), and
//! `refresh` opens the snapshot on the durable path: each commit is
//! fsync'd to a sidecar `<snapshot>.wal` *before* it is applied, so a
//! killed refresh loses nothing — rerunning it recovers the committed
//! prefix from the log and carries on from there.
//!
//! `scenario` runs one of the canned event scripts (steady-state,
//! migration-wave, churn-storm, noise-burst) through the closed
//! serve → measure → refresh-or-retrain loop and prints the
//! accuracy-over-time curve; `--json FILE` writes the machine-readable
//! report.

use mlp::core::geo_groups::geo_groups;
use mlp::prelude::*;
use mlp::social::codec;
use mlp::social::{Adjacency, DatasetStats, GroundTruth, StreamingGenerator};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  mlp-cli generate --users N [--cities N] [--seed N] --out FILE
  mlp-cli generate-corpus --users N [--chunk N] [--cities N] [--seed N] --out DIR
  mlp-cli stats    --data FILE
  mlp-cli profile  --data FILE --user ID [--iters N] [--seed N]
  mlp-cli explain  --data FILE --user ID [--iters N] [--seed N]
  mlp-cli evaluate --data FILE [--folds N] [--iters N] [--seed N]
  mlp-cli train    --data FILE --out SNAPSHOT [--train-users N] [--iters N] [--seed N]
  mlp-cli train    --corpus DIR --out SNAPSHOT [--shards N] [--reconcile-every K]
                   [--iters N] [--seed N]
  mlp-cli refresh  --data FILE --snapshot SNAPSHOT --out SNAPSHOT [--batch N] [--seed N]
  mlp-cli inspect  --snapshot SNAPSHOT
  mlp-cli scenario [--name SCENARIO] [--users N] [--ticks N] [--cities N]
                   [--seed N] [--iters N] [--json FILE]";

struct Options {
    users: usize,
    cities: usize,
    seed: u64,
    iters: usize,
    folds: usize,
    batch: usize,
    chunk: usize,
    shards: usize,
    reconcile_every: usize,
    ticks: usize,
    user: Option<u32>,
    train_users: Option<usize>,
    name: Option<String>,
    data: Option<String>,
    corpus: Option<String>,
    snapshot: Option<String>,
    out: Option<String>,
    json: Option<String>,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        users: 2_000,
        cities: 300,
        seed: 42,
        iters: 20,
        folds: 5,
        batch: 64,
        chunk: 50_000,
        shards: 1,
        reconcile_every: 2,
        ticks: 8,
        user: None,
        train_users: None,
        name: None,
        data: None,
        corpus: None,
        snapshot: None,
        out: None,
        json: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} requires a value")).cloned();
        match flag.as_str() {
            "--users" => o.users = parse_num(&value()?)? as usize,
            "--cities" => o.cities = parse_num(&value()?)? as usize,
            "--seed" => o.seed = parse_num(&value()?)?,
            "--iters" => o.iters = parse_num(&value()?)? as usize,
            "--folds" => o.folds = parse_num(&value()?)? as usize,
            "--batch" => o.batch = parse_num(&value()?)? as usize,
            "--chunk" => o.chunk = parse_num(&value()?)? as usize,
            "--shards" => o.shards = parse_num(&value()?)? as usize,
            "--reconcile-every" => o.reconcile_every = parse_num(&value()?)? as usize,
            "--ticks" => o.ticks = parse_num(&value()?)? as usize,
            "--user" => o.user = Some(parse_num(&value()?)? as u32),
            "--train-users" => o.train_users = Some(parse_num(&value()?)? as usize),
            "--name" => o.name = Some(value()?),
            "--data" => o.data = Some(value()?),
            "--corpus" => o.corpus = Some(value()?),
            "--snapshot" => o.snapshot = Some(value()?),
            "--out" => o.out = Some(value()?),
            "--json" => o.json = Some(value()?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(o)
}

/// Parses a number, accepting `_` separators (`--users 1_000_000`).
fn parse_num(s: &str) -> Result<u64, String> {
    s.replace('_', "").parse().map_err(|e| format!("bad number {s}: {e}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("missing command".into());
    };
    let o = parse_options(&args[1..])?;
    let gaz =
        Gazetteer::with_synthetic(&SynthConfig { total_cities: o.cities, ..Default::default() });

    match command.as_str() {
        "generate" => {
            let out = o.out.as_deref().ok_or("generate needs --out FILE")?;
            let data = Generator::new(
                &gaz,
                GeneratorConfig { num_users: o.users, seed: o.seed, ..Default::default() },
            )
            .generate();
            let bytes = codec::encode(&data.dataset, &data.truth);
            mlp::core::write_atomic(std::path::Path::new(out), bytes.as_slice())
                .map_err(|e| format!("writing {out}: {e}"))?;
            println!(
                "wrote {out}: {} users, {} edges, {} mentions ({} bytes)",
                data.dataset.num_users(),
                data.dataset.num_edges(),
                data.dataset.num_mentions(),
                bytes.len()
            );
            Ok(())
        }
        "generate-corpus" => {
            let out = o.out.as_deref().ok_or("generate-corpus needs --out DIR")?;
            if o.chunk == 0 {
                return Err("--chunk must be at least 1".into());
            }
            let config = GeneratorConfig { num_users: o.users, seed: o.seed, ..Default::default() };
            let manifest = StreamingGenerator::new(&gaz, config, o.chunk)
                .write_corpus(std::path::Path::new(out))
                .map_err(|e| format!("writing corpus {out}: {e}"))?;
            println!(
                "wrote {out}: {} users in {} chunks of {} ({} edges, {} mentions)",
                manifest.num_users,
                manifest.num_chunks,
                manifest.chunk_size,
                manifest.total_edges,
                manifest.total_mentions
            );
            Ok(())
        }
        "stats" => {
            let (dataset, truth) = load(&o)?;
            println!("{}", DatasetStats::compute(&dataset, &gaz));
            println!("multi-location users: {}", truth.multi_location_users().len());
            Ok(())
        }
        "profile" => {
            let (dataset, truth) = load(&o)?;
            let user = user_id(&o, &dataset)?;
            let result = infer(&gaz, &dataset, &o);
            println!("user {user}");
            println!("  inferred profile:");
            for &(c, p) in result.profiles[user.index()].iter().take(5) {
                if p > 0.01 {
                    println!("    {:<25} {:>5.1}%", gaz.city(c).full_name(), p * 100.0);
                }
            }
            let names: Vec<String> =
                truth.locations(user).iter().map(|&c| gaz.city(c).full_name()).collect();
            println!("  generator truth: {}", names.join(" / "));
            Ok(())
        }
        "explain" => {
            let (dataset, _) = load(&o)?;
            let user = user_id(&o, &dataset)?;
            let result = infer(&gaz, &dataset, &o);
            let adj = Adjacency::build(&dataset);
            let grouping = geo_groups(&dataset, &adj, &result, user);
            println!("user {user}: {} geo groups", grouping.groups.len());
            for g in &grouping.groups {
                println!("  [{}] {} members", gaz.city(g.location).full_name(), g.members.len());
            }
            println!("  noisy relationships: {}", grouping.noisy.len());
            Ok(())
        }
        "evaluate" => {
            let (dataset, truth) = load(&o)?;
            let folds = Folds::split(&dataset, o.folds.max(2), o.seed);
            let test_users = folds.test_users(0);
            let train = folds.train_view(&dataset, 0);
            let result = Mlp::new(&gaz, &train, mlp_config(&o))
                .map_err(|e| format!("model rejected inputs: {e}"))?
                .run();
            let hits = test_users
                .iter()
                .filter(|&&u| gaz.distance(result.home(u), truth.home(u)) <= 100.0)
                .count();
            println!(
                "masked-home ACC@100 on fold 0: {:.2}% ({hits}/{})",
                100.0 * hits as f64 / test_users.len() as f64,
                test_users.len()
            );
            Ok(())
        }
        "train" => {
            let out = o.out.as_deref().ok_or("train needs --out SNAPSHOT")?;
            if let Some(corpus) = o.corpus.as_deref() {
                // Out-of-core path: stream the chunked corpus, sharded.
                let engine = ServingEngine::builder(&gaz)
                    .mlp_config(mlp_config(&o))
                    .shards(o.shards)
                    .reconcile_every(o.reconcile_every)
                    .train_corpus(std::path::Path::new(corpus))
                    .map_err(|e| format!("training engine: {e}"))?;
                let written =
                    engine.write_artifact(out).map_err(|e| format!("writing {out}: {e}"))?;
                let snapshot = engine.snapshot();
                println!(
                    "wrote {out}: posterior of {} users over {} cities \
                     ({written} bytes, {} shard(s), reconcile every {})",
                    snapshot.num_users(),
                    snapshot.num_cities,
                    o.shards.max(1),
                    o.reconcile_every.max(1),
                );
                return Ok(());
            }
            let (dataset, _) = load(&o)?;
            let n = o.train_users.unwrap_or(dataset.num_users());
            if n == 0 || n > dataset.num_users() {
                return Err(format!(
                    "--train-users {n} out of range (dataset has {})",
                    dataset.num_users()
                ));
            }
            let train = dataset.prefix(n);
            let engine = ServingEngine::builder(&gaz)
                .mlp_config(mlp_config(&o))
                .train(&train)
                .map_err(|e| format!("training engine: {e}"))?;
            let written = engine.write_artifact(out).map_err(|e| format!("writing {out}: {e}"))?;
            let snapshot = engine.snapshot();
            println!(
                "wrote {out}: posterior of {} users over {} cities ({written} bytes)",
                snapshot.num_users(),
                snapshot.num_cities,
            );
            Ok(())
        }
        "refresh" => {
            let snap_path = o.snapshot.as_deref().ok_or("refresh needs --snapshot SNAPSHOT")?;
            let out = o.out.as_deref().ok_or("refresh needs --out SNAPSHOT")?;
            let (dataset, _) = load(&o)?;
            let fold_in = FoldInConfig { seed: o.seed, ..Default::default() };
            let engine = ServingEngine::builder(&gaz)
                .fold_in_config(fold_in)
                .from_artifact_file(snap_path)
                .map_err(|e| format!("loading {snap_path}: {e}"))?;
            if let Some(rec) = engine.recovery_report().filter(|r| r.recovered_anything()) {
                println!(
                    "recovered {} committed deltas ({} users) from {snap_path}.wal{}",
                    rec.replayed_records,
                    rec.replayed_users,
                    if rec.torn_bytes_dropped > 0 {
                        format!(", dropped {} torn bytes", rec.torn_bytes_dropped)
                    } else {
                        String::new()
                    }
                );
            }
            let trained = engine.snapshot().num_users();
            if trained >= dataset.num_users() {
                return Err(format!(
                    "nothing to refresh: snapshot already covers {trained} of {} users",
                    dataset.num_users()
                ));
            }
            let new_users: Vec<UserId> =
                (trained as u32..dataset.num_users() as u32).map(UserId).collect();
            let report = engine
                .refresh_from_dataset(&dataset, &new_users, o.batch.max(1))
                .map_err(|e| format!("refresh failed: {e}"))?;
            for commit in &report.commits {
                println!(
                    "commit {}: +{} users ({} total)",
                    commit.epoch, commit.appended, commit.total_users
                );
            }
            let written = engine.write_artifact(out).map_err(|e| format!("writing {out}: {e}"))?;
            println!(
                "wrote {out}: {} users, {} delta records, {written} bytes{}",
                engine.snapshot().num_users(),
                engine.commits(),
                if report.needs_retrain {
                    " (staleness policy: schedule a cold retrain)"
                } else {
                    ""
                }
            );
            Ok(())
        }
        "scenario" => {
            let name = o.name.as_deref().unwrap_or("migration-wave");
            let script = ScenarioScript::by_name(name, o.users, o.ticks).ok_or_else(|| {
                format!("unknown scenario {name} (canned: {})", CANNED_SCENARIOS.join(", "))
            })?;
            let config = ScenarioRunConfig {
                generator: GeneratorConfig { seed: o.seed, ..Default::default() },
                mlp: mlp_config(&o),
                ..Default::default()
            };
            let report =
                run_scenario(&gaz, script, &config).map_err(|e| format!("scenario {name}: {e}"))?;
            println!(
                "scenario {name}: {} users, {} ticks, seed {}",
                report.initial_users,
                report.ticks.len(),
                report.seed
            );
            println!("{}", report.render_table());
            println!(
                "initial ACC@100 {:.4} | final {:.4} | {} refreshes, {} retrains | \
                 events {:#018x} | run {:#018x}",
                report.initial_acc,
                report.final_acc_committed().unwrap_or(report.initial_acc),
                report.refreshes(),
                report.retrains(),
                report.event_fingerprint,
                report.determinism_fingerprint()
            );
            if let Some(path) = o.json.as_deref() {
                std::fs::write(path, report.to_json())
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!("wrote {path}");
            }
            Ok(())
        }
        "inspect" => {
            let path = o.snapshot.as_deref().ok_or("inspect needs --snapshot SNAPSHOT")?;
            let raw = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
            let info = mlp::core::snapshot::inspect_artifact(&raw)
                .map_err(|e| format!("inspecting {path}: {e}"))?;
            println!("{path}: snapshot format v{} ({} bytes)", info.version, info.total_bytes);
            println!(
                "  {:?} posterior: {} users over {} cities, {} venues",
                info.variant, info.num_users, info.num_cities, info.num_venues
            );
            println!(
                "  slabs: {} user candidate entries, {} venue count entries",
                info.user_nnz, info.venue_nnz
            );
            println!("  gazetteer fingerprint {:016x}", info.gaz_fingerprint);
            println!("  artifact fingerprint  {:016x}", mlp::core::wal::artifact_fingerprint(&raw));
            println!("  embedded delta records: {}", info.delta_records);
            if info.sections.is_empty() {
                println!("  legacy layout: no section table, reads via the copying decode");
            } else {
                println!("  section table ({} sections, 64-byte aligned):", info.sections.len());
                for s in &info.sections {
                    println!(
                        "    {:<18} offset {:>12}  len {:>12}  crc {:08x}",
                        s.name, s.offset, s.len, s.crc
                    );
                }
            }
            let wal_path = format!("{path}.wal");
            match mlp::core::wal::inspect_log(std::path::Path::new(&wal_path))
                .map_err(|e| format!("reading {wal_path}: {e}"))?
            {
                None => println!("  sidecar log: none"),
                Some(w) => {
                    let binding = if w.fingerprint == mlp::core::wal::artifact_fingerprint(&raw) {
                        "bound to this artifact"
                    } else {
                        "STALE: bound to a different base"
                    };
                    println!(
                        "  sidecar log: {} committed records, {} bytes ({binding}{})",
                        w.records,
                        w.bytes,
                        if w.torn_bytes > 0 {
                            format!(", {} torn tail bytes", w.torn_bytes)
                        } else {
                            String::new()
                        }
                    );
                }
            }
            Ok(())
        }
        other => Err(format!("unknown command {other}")),
    }
}

fn load(o: &Options) -> Result<(Dataset, GroundTruth), String> {
    let path = o.data.as_deref().ok_or("this command needs --data FILE")?;
    let raw = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    codec::decode(raw.into()).map_err(|e| format!("decoding {path}: {e}"))
}

fn user_id(o: &Options, dataset: &Dataset) -> Result<UserId, String> {
    let id = o.user.ok_or("this command needs --user ID")?;
    if (id as usize) >= dataset.num_users() {
        return Err(format!("user {id} out of range (dataset has {})", dataset.num_users()));
    }
    Ok(UserId(id))
}

/// The one place `--iters`/`--seed` become an inference config. Burn-in
/// is half the chain, which stays strictly below it for every
/// `--iters >= 1` (`--iters 1` runs a single accumulated sweep).
fn mlp_config(o: &Options) -> MlpConfig {
    MlpConfig { iterations: o.iters, burn_in: o.iters / 2, seed: o.seed, ..Default::default() }
}

fn infer(gaz: &Gazetteer, dataset: &Dataset, o: &Options) -> MlpResult {
    Mlp::new(gaz, dataset, mlp_config(o)).expect("snapshot datasets are valid").run()
}
