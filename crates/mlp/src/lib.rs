//! `mlp` — Multiple Location Profiling for users and relationships.
//!
//! A Rust implementation of Li, Wang & Chang, *Multiple Location Profiling
//! for Users and Relationships from Social Network and Content* (VLDB
//! 2012), together with everything needed to reproduce the paper end to
//! end: a gazetteer, a synthetic Twitter generator with exact ground
//! truth, the baselines the paper compares against, and the evaluation
//! harness for all three tasks.
//!
//! # Quick start
//!
//! ```
//! use mlp::prelude::*;
//!
//! // A gazetteer of real US cities and a small synthetic Twitter.
//! let gaz = Gazetteer::us_cities();
//! let data = Generator::new(
//!     &gaz,
//!     GeneratorConfig { num_users: 200, seed: 1, ..Default::default() },
//! )
//! .generate();
//!
//! // Profile every user's locations and explain every relationship.
//! let config = MlpConfig { iterations: 8, burn_in: 4, ..Default::default() };
//! let result = Mlp::new(&gaz, &data.dataset, config).unwrap().run();
//!
//! let user = UserId(0);
//! let home = result.home(user);
//! println!("user 0 lives near {}", gaz.city(home).full_name());
//! assert_eq!(result.profiles.len(), 200);
//! ```
//!
//! # Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`geo`] | coordinates, distance kernels, spatial grid, power laws |
//! | [`sampling`] | deterministic RNG, alias tables, Dirichlet/Gamma draws |
//! | [`gazetteer`] | US city table, venue vocabulary, venue extraction |
//! | [`social`] | dataset model, synthetic generator, folds, codecs |
//! | [`core`] | the MLP model: candidacy, Gibbs sampler, Gibbs-EM |
//! | [`baselines`] | BaseU (Backstrom), BaseC (Cheng), voting, home explainer |
//! | [`eval`] | ACC@m, DP/DR@K, the three paper tasks, text tables |

pub use mlp_baselines as baselines;
pub use mlp_core as core;
pub use mlp_eval as eval;
pub use mlp_gazetteer as gazetteer;
pub use mlp_geo as geo;
pub use mlp_sampling as sampling;
pub use mlp_social as social;

/// The most common imports, one `use` away.
pub mod prelude {
    pub use mlp_baselines::{
        BaseC, BaseCConfig, BaseU, BaseUConfig, HomeExplainer, HomePredictor, VotingClassifier,
    };
    pub use mlp_core::{
        Coalescer, ConfigError, EngineBuilder, EngineError, FoldInConfig, FoldInEngine, Mlp,
        MlpConfig, MlpResult, NewUserObservations, OnlineUpdater, PosteriorSnapshot,
        ProfileRequest, ProfileResponse, RankedCities, RecoveryReport, RefreshReport,
        RetrainDecision, RetrainReport, ServingEngine, SnapshotDelta, SnapshotHandle,
        StalenessPolicy, Variant,
    };
    pub use mlp_eval::{
        drift_for_engine, run_scenario, ExperimentContext, HomeTask, Method, MultiLocationTask,
        RelationTask, ScenarioReport, ScenarioRunConfig, TickAction, TickMetrics,
    };
    pub use mlp_gazetteer::{CityId, Gazetteer, SynthConfig, VenueExtractor, VenueId};
    pub use mlp_geo::{GeoPoint, PowerLaw};
    pub use mlp_social::{
        Dataset, Folds, GeneratedData, Generator, GeneratorConfig, ScenarioEvent, ScenarioScript,
        ScenarioWorld, TickDelta, UserId, CANNED_SCENARIOS,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_supports_the_full_pipeline() {
        let gaz = Gazetteer::us_cities();
        let data =
            Generator::new(&gaz, GeneratorConfig { num_users: 60, seed: 5, ..Default::default() })
                .generate();
        let config = MlpConfig { iterations: 4, burn_in: 2, ..Default::default() };
        let result = Mlp::new(&gaz, &data.dataset, config).unwrap().run();
        assert_eq!(result.profiles.len(), 60);
        let home = result.home(UserId(3));
        assert!(home.index() < gaz.num_cities());
    }
}
