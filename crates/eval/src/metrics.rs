//! The paper's evaluation measures (Secs. 5.1–5.3).

use mlp_gazetteer::{CityId, Gazetteer};

/// Accuracy within `m` miles (Sec. 5.1):
/// `ACC@m = |{u : d(l_u, l̂_u) ≤ m}| / |U|`.
///
/// A `None` prediction counts as a miss — the denominator is all test
/// users, matching how the paper scores methods that fail to place a user.
pub fn acc_at_m(gaz: &Gazetteer, predictions: &[Option<CityId>], truths: &[CityId], m: f64) -> f64 {
    assert_eq!(predictions.len(), truths.len(), "prediction/truth length mismatch");
    if truths.is_empty() {
        return 0.0;
    }
    let hits = predictions
        .iter()
        .zip(truths)
        .filter(|(p, t)| p.is_some_and(|p| gaz.distance(p, **t) <= m))
        .count();
    hits as f64 / truths.len() as f64
}

/// Accumulative accuracy-at-distance curve (Fig. 4): `ACC@m` evaluated at
/// each distance in `distances`, returned as `(m, accuracy)` pairs.
pub fn aad_curve(
    gaz: &Gazetteer,
    predictions: &[Option<CityId>],
    truths: &[CityId],
    distances: &[f64],
) -> Vec<(f64, f64)> {
    distances.iter().map(|&m| (m, acc_at_m(gaz, predictions, truths, m))).collect()
}

/// Whether location `l` is close enough (within `m` miles) to any location
/// in `set` — the paper's `c(l, L)` predicate (Sec. 5.2).
fn close(gaz: &Gazetteer, l: CityId, set: &[CityId], m: f64) -> bool {
    set.iter().any(|&o| gaz.distance(l, o) <= m)
}

/// Distance-based precision at K (Sec. 5.2): the fraction of predicted
/// locations close enough to some true location, averaged over users.
///
/// `DP(u) = |{l ∈ L'(u) : c(l, L(u))}| / |L'(u)|`, with the prediction list
/// truncated to its top `k`. Users with no predictions score 0.
pub fn dp_at_k(
    gaz: &Gazetteer,
    predicted: &[Vec<CityId>],
    truth: &[Vec<CityId>],
    k: usize,
    m: f64,
) -> f64 {
    assert_eq!(predicted.len(), truth.len());
    if predicted.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (pred, t) in predicted.iter().zip(truth) {
        let top: Vec<CityId> = pred.iter().copied().take(k).collect();
        if top.is_empty() {
            continue;
        }
        let good = top.iter().filter(|&&l| close(gaz, l, t, m)).count();
        total += good as f64 / top.len() as f64;
    }
    total / predicted.len() as f64
}

/// Distance-based recall at K (Sec. 5.2): the fraction of true locations
/// close enough to some predicted location, averaged over users.
///
/// `DR(u) = |{l ∈ L(u) : c(l, L'(u))}| / |L(u)|`.
pub fn dr_at_k(
    gaz: &Gazetteer,
    predicted: &[Vec<CityId>],
    truth: &[Vec<CityId>],
    k: usize,
    m: f64,
) -> f64 {
    assert_eq!(predicted.len(), truth.len());
    if predicted.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (pred, t) in predicted.iter().zip(truth) {
        if t.is_empty() {
            continue;
        }
        let top: Vec<CityId> = pred.iter().copied().take(k).collect();
        let covered = t.iter().filter(|&&l| close(gaz, l, &top, m)).count();
        total += covered as f64 / t.len() as f64;
    }
    total / predicted.len() as f64
}

/// Relationship-explanation accuracy (Sec. 5.3): a relationship is
/// accurately explained iff *both* endpoints' assignments land within `m`
/// miles of the true assignments. `None` predictions miss.
pub fn relationship_acc_at_m(
    gaz: &Gazetteer,
    predictions: &[Option<(CityId, CityId)>],
    truths: &[(CityId, CityId)],
    m: f64,
) -> f64 {
    assert_eq!(predictions.len(), truths.len());
    if truths.is_empty() {
        return 0.0;
    }
    let hits = predictions
        .iter()
        .zip(truths)
        .filter(|(p, (tx, ty))| {
            p.is_some_and(|(px, py)| gaz.distance(px, *tx) <= m && gaz.distance(py, *ty) <= m)
        })
        .count();
    hits as f64 / truths.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gaz() -> Gazetteer {
        Gazetteer::us_cities()
    }

    fn city(g: &Gazetteer, name: &str, state: &str) -> CityId {
        g.city_by_name_state(name, state).unwrap()
    }

    #[test]
    fn acc_counts_near_hits_and_penalises_none() {
        let g = gaz();
        let la = city(&g, "los angeles", "CA");
        let sm = city(&g, "santa monica", "CA");
        let nyc = city(&g, "new york", "NY");
        // Truth: LA, LA, LA. Predictions: Santa Monica (≈15 mi, hit),
        // NYC (miss), None (miss).
        let preds = vec![Some(sm), Some(nyc), None];
        let truths = vec![la, la, la];
        let acc = acc_at_m(&g, &preds, &truths, 100.0);
        assert!((acc - 1.0 / 3.0).abs() < 1e-12);
        // At 5,000 miles everything placed is a hit; None still misses.
        assert!((acc_at_m(&g, &preds, &truths, 5_000.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn acc_empty_is_zero() {
        assert_eq!(acc_at_m(&gaz(), &[], &[], 100.0), 0.0);
    }

    #[test]
    fn aad_is_monotone_in_distance() {
        let g = gaz();
        let la = city(&g, "los angeles", "CA");
        let austin = city(&g, "austin", "TX");
        let chicago = city(&g, "chicago", "IL");
        let preds = vec![Some(la), Some(austin), Some(chicago)];
        let truths = vec![la, la, la];
        let curve = aad_curve(&g, &preds, &truths, &[0.0, 100.0, 1_500.0, 3_000.0]);
        for w in curve.windows(2) {
            assert!(w[0].1 <= w[1].1, "AAD must be non-decreasing: {curve:?}");
        }
        assert!((curve[0].1 - 1.0 / 3.0).abs() < 1e-12, "exact hit at m=0");
        assert_eq!(curve[3].1, 1.0);
    }

    #[test]
    fn dp_dr_match_paper_semantics() {
        let g = gaz();
        let la = city(&g, "los angeles", "CA");
        let sm = city(&g, "santa monica", "CA"); // close to LA
        let austin = city(&g, "austin", "TX");
        let nyc = city(&g, "new york", "NY");
        // User truth {LA, Austin}; prediction [Santa Monica, NYC].
        let predicted = vec![vec![sm, nyc]];
        let truth = vec![vec![la, austin]];
        // DP@2: SM is close to LA (hit), NYC close to nothing → 1/2.
        assert!((dp_at_k(&g, &predicted, &truth, 2, 100.0) - 0.5).abs() < 1e-12);
        // DR@2: LA covered by SM, Austin uncovered → 1/2.
        assert!((dr_at_k(&g, &predicted, &truth, 2, 100.0) - 0.5).abs() < 1e-12);
        // DP@1: only SM considered → 1.0; DR@1: only LA covered → 1/2.
        assert!((dp_at_k(&g, &predicted, &truth, 1, 100.0) - 1.0).abs() < 1e-12);
        assert!((dr_at_k(&g, &predicted, &truth, 1, 100.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dr_grows_with_k_dp_can_shrink() {
        let g = gaz();
        let la = city(&g, "los angeles", "CA");
        let austin = city(&g, "austin", "TX");
        let nyc = city(&g, "new york", "NY");
        let predicted = vec![vec![la, nyc, austin]];
        let truth = vec![vec![la, austin]];
        let dr1 = dr_at_k(&g, &predicted, &truth, 1, 100.0);
        let dr3 = dr_at_k(&g, &predicted, &truth, 3, 100.0);
        assert!(dr3 > dr1);
        let dp1 = dp_at_k(&g, &predicted, &truth, 1, 100.0);
        let dp2 = dp_at_k(&g, &predicted, &truth, 2, 100.0);
        assert!(dp2 < dp1, "the NYC miss dilutes precision at K=2");
    }

    #[test]
    fn empty_predictions_score_zero() {
        let g = gaz();
        let la = city(&g, "los angeles", "CA");
        let predicted = vec![Vec::new()];
        let truth = vec![vec![la]];
        assert_eq!(dp_at_k(&g, &predicted, &truth, 2, 100.0), 0.0);
        assert_eq!(dr_at_k(&g, &predicted, &truth, 2, 100.0), 0.0);
    }

    #[test]
    fn relationship_accuracy_requires_both_endpoints() {
        let g = gaz();
        let la = city(&g, "los angeles", "CA");
        let sm = city(&g, "santa monica", "CA");
        let austin = city(&g, "austin", "TX");
        let nyc = city(&g, "new york", "NY");
        let truths = vec![(la, austin), (la, austin), (la, austin)];
        let preds = vec![
            Some((sm, austin)), // both within 100 → hit
            Some((sm, nyc)),    // friend endpoint wrong → miss
            None,               // no explanation → miss
        ];
        let acc = relationship_acc_at_m(&g, &preds, &truths, 100.0);
        assert!((acc - 1.0 / 3.0).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_city() -> impl Strategy<Value = CityId> {
        (0u32..250).prop_map(CityId)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// ACC@m is monotone non-decreasing in m and bounded in [0, 1].
        #[test]
        fn acc_monotone_in_m(
            preds in prop::collection::vec(prop::option::of(arb_city()), 1..40),
            truths in prop::collection::vec(arb_city(), 1..40),
            m1 in 0.0f64..1_500.0,
            dm in 0.0f64..1_500.0,
        ) {
            let gaz = Gazetteer::us_cities();
            let n = preds.len().min(truths.len());
            let preds = &preds[..n];
            let truths = &truths[..n];
            let a1 = acc_at_m(&gaz, preds, truths, m1);
            let a2 = acc_at_m(&gaz, preds, truths, m1 + dm);
            prop_assert!((0.0..=1.0).contains(&a1));
            prop_assert!(a2 >= a1 - 1e-12);
        }

        /// DP/DR are bounded in [0, 1] and DR is monotone in K.
        #[test]
        fn dp_dr_bounds_and_dr_monotonicity(
            predicted in prop::collection::vec(
                prop::collection::vec(arb_city(), 0..5), 1..15),
            truth in prop::collection::vec(
                prop::collection::vec(arb_city(), 1..4), 1..15),
            m in 10.0f64..500.0,
        ) {
            let gaz = Gazetteer::us_cities();
            let n = predicted.len().min(truth.len());
            let predicted = &predicted[..n];
            let truth = &truth[..n];
            let mut prev_dr = 0.0;
            for k in 1..=4 {
                let dp = dp_at_k(&gaz, predicted, truth, k, m);
                let dr = dr_at_k(&gaz, predicted, truth, k, m);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&dp));
                prop_assert!((0.0..=1.0 + 1e-12).contains(&dr));
                prop_assert!(dr >= prev_dr - 1e-12, "DR must grow with K");
                prev_dr = dr;
            }
        }

        /// Relationship accuracy is monotone in m and bounded.
        #[test]
        fn relationship_acc_monotone(
            pairs in prop::collection::vec((arb_city(), arb_city()), 1..30),
            flip in prop::collection::vec(any::<bool>(), 1..30),
            m in 0.0f64..1_000.0,
        ) {
            let gaz = Gazetteer::us_cities();
            let n = pairs.len().min(flip.len());
            let truths: Vec<(CityId, CityId)> = pairs[..n].to_vec();
            let preds: Vec<Option<(CityId, CityId)>> = truths
                .iter()
                .zip(&flip[..n])
                .map(|(&t, &f)| if f { Some(t) } else { None })
                .collect();
            let a1 = relationship_acc_at_m(&gaz, &preds, &truths, m);
            let a2 = relationship_acc_at_m(&gaz, &preds, &truths, m + 100.0);
            prop_assert!((0.0..=1.0).contains(&a1));
            prop_assert!(a2 >= a1 - 1e-12);
            // Exact predictions hit at every m ≥ 0.
            let exact = flip[..n].iter().filter(|&&f| f).count() as f64 / n as f64;
            prop_assert!((a1 - exact).abs() < 1e-9);
        }
    }
}
