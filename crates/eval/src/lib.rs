//! Evaluation harness for the MLP reproduction.
//!
//! Implements the paper's three evaluation tasks (Sec. 5) with the exact
//! measures it defines, plus the shared experiment plumbing used by the
//! bench binaries and examples:
//!
//! * [`metrics`] — ACC@m, accumulative-accuracy-at-distance (AAD) curves,
//!   distance-based precision/recall DP@K / DR@K, and relationship-
//!   explanation accuracy;
//! * [`runner`] — the experiment context (gazetteer + generated dataset +
//!   folds) and the uniform [`runner::Method`] dispatcher over all six
//!   contestants (BaseU, BaseC, Voting, MLP_U, MLP_C, MLP);
//! * [`home`] — Task 1: home-location prediction with 5-fold CV (Tab. 2,
//!   Fig. 4);
//! * [`multi`] — Task 2: multiple-location discovery (Tab. 3, Figs. 6–7);
//! * [`relation`] — Task 3: relationship explanation (Fig. 8);
//! * [`observations`] — the Fig. 3 data-analysis artifacts;
//! * [`cases`] — the case-study tables (Tabs. 4–5);
//! * [`drift`] — refreshed-vs-retrained accuracy for the online-update
//!   staleness policy;
//! * [`scenario`] — the closed loop over an event-scripted world:
//!   serve → measure → refresh-or-retrain per tick, producing
//!   accuracy-over-time curves;
//! * [`table`] — plain-text table rendering shared by every bench binary.

pub mod bootstrap;
pub mod cases;
pub mod drift;
pub mod home;
pub mod metrics;
pub mod multi;
pub mod observations;
pub mod relation;
pub mod runner;
pub mod scenario;
pub mod table;

pub use bootstrap::{bootstrap_accuracy, bootstrap_mean, BootstrapInterval};
pub use drift::{drift_for_engine, online_refresh_drift, DriftReport};
pub use home::{HomePredictionReport, HomeTask, WarmStartReport};
pub use metrics::{aad_curve, acc_at_m, dp_at_k, dr_at_k, relationship_acc_at_m};
pub use multi::{MultiLocationReport, MultiLocationTask};
pub use relation::{RelationReport, RelationTask};
pub use runner::{ExperimentContext, Method, TrainCache, TrainedMlp};
pub use scenario::{run_scenario, ScenarioReport, ScenarioRunConfig, TickAction, TickMetrics};
pub use table::TextTable;
