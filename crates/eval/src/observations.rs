//! The Fig. 3 data-analysis artifacts (paper Sec. 4.1–4.2).
//!
//! * Fig. 3(a): following probability vs. distance on labeled pairs, with
//!   the power-law fit;
//! * Fig. 3(b): tweeting probabilities of top venues at two cities;
//! * Fig. 3(c): one multi-location user's friends and venues, split across
//!   their regions.

use mlp_gazetteer::{CityId, Gazetteer, VenueId};
use mlp_geo::{fit_log_log_weighted, PowerLaw};
use mlp_social::{following_probability_histogram, Adjacency, Dataset, GroundTruth, UserId};
use std::collections::HashMap;

/// Fig. 3(a): the empirical `(distance, probability, pairs)` curve and the
/// fitted power law.
pub struct FollowingCurve {
    /// Per-bucket points `(miles, probability, pair count)`.
    pub points: Vec<(f64, f64, f64)>,
    /// Log–log least-squares fit, if the curve supports one.
    pub fit: Option<PowerLaw>,
}

/// Computes Fig. 3(a) on a dataset's labeled users.
pub fn following_curve(dataset: &Dataset, gaz: &Gazetteer, bucket_miles: f64) -> FollowingCurve {
    let hist = following_probability_histogram(dataset, gaz, bucket_miles, 3_200.0);
    let points = hist.weighted_curve(10);
    let fit = fit_log_log_weighted(&points);
    FollowingCurve { points, fit }
}

/// Fig. 3(b): the top-`k` tweeting probabilities at one city, from the
/// mentions of users registered there. Returns `(venue, probability)`
/// sorted by descending probability.
pub fn tweeting_probabilities(dataset: &Dataset, city: CityId, k: usize) -> Vec<(VenueId, f64)> {
    let mut counts: HashMap<u32, u64> = HashMap::new();
    let mut total = 0u64;
    for m in &dataset.mentions {
        if dataset.registered[m.user.index()] == Some(city) {
            *counts.entry(m.venue.0).or_insert(0) += 1;
            total += 1;
        }
    }
    if total == 0 {
        return Vec::new();
    }
    let mut probs: Vec<(VenueId, f64)> =
        counts.into_iter().map(|(v, n)| (VenueId(v), n as f64 / total as f64)).collect();
    probs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    probs.truncate(k);
    probs
}

/// Fig. 3(c): one user's observable footprint — friends' registered cities
/// and tweeted venues — next to their true multi-location profile.
pub struct UserFootprint {
    /// The user.
    pub user: UserId,
    /// True profile from the generator.
    pub true_locations: Vec<CityId>,
    /// Registered cities of friends + followers (with multiplicity).
    pub neighbor_cities: Vec<CityId>,
    /// Tweeted venues (with multiplicity).
    pub venues: Vec<VenueId>,
}

/// Builds the footprint of `user`.
pub fn user_footprint(
    dataset: &Dataset,
    truth: &GroundTruth,
    adj: &Adjacency,
    user: UserId,
) -> UserFootprint {
    let mut neighbor_cities = Vec::new();
    for &s in adj.out_edges(user) {
        if let Some(c) = dataset.registered[dataset.edges[s as usize].friend.index()] {
            neighbor_cities.push(c);
        }
    }
    for &s in adj.in_edges(user) {
        if let Some(c) = dataset.registered[dataset.edges[s as usize].follower.index()] {
            neighbor_cities.push(c);
        }
    }
    let venues =
        adj.mentions_of(user).iter().map(|&k| dataset.mentions[k as usize].venue).collect();
    UserFootprint { user, true_locations: truth.locations(user), neighbor_cities, venues }
}

/// Picks a showcase multi-location user: two true locations at least
/// `min_separation` miles apart with the most relationships — the analogue
/// of the paper's user 13069282 (LA + Austin).
pub fn showcase_user(
    _dataset: &Dataset,
    truth: &GroundTruth,
    gaz: &Gazetteer,
    adj: &Adjacency,
    min_separation: f64,
) -> Option<UserId> {
    truth
        .multi_location_users()
        .into_iter()
        .filter(|&u| {
            let locs = truth.locations(u);
            locs.len() >= 2 && gaz.distance(locs[0], locs[1]) >= min_separation
        })
        .max_by_key(|&u| adj.out_edges(u).len() + adj.in_edges(u).len() + adj.mentions_of(u).len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_social::{Generator, GeneratorConfig};

    fn data() -> (Gazetteer, mlp_social::GeneratedData) {
        let gaz = Gazetteer::us_cities();
        let d = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 1_500, seed: 51, ..Default::default() },
        )
        .generate();
        (gaz, d)
    }

    #[test]
    fn following_curve_decays_and_fits() {
        let (gaz, data) = data();
        let curve = following_curve(&data.dataset, &gaz, 50.0);
        assert!(curve.points.len() > 10);
        let fit = curve.fit.expect("fit should succeed at this scale");
        assert!(fit.alpha < -0.1, "alpha {}", fit.alpha);
    }

    #[test]
    fn tweeting_probabilities_favor_local_venues() {
        let (gaz, data) = data();
        // Pick the city with the most registered users for a stable test.
        let mut counts = vec![0u32; gaz.num_cities()];
        for r in data.dataset.registered.iter().flatten() {
            counts[r.index()] += 1;
        }
        let city = CityId(
            counts.iter().enumerate().max_by_key(|&(_, &c)| c).map(|(i, _)| i as u32).unwrap(),
        );
        let probs = tweeting_probabilities(&data.dataset, city, 5);
        assert!(!probs.is_empty());
        // The top venue should resolve to (or near) the city itself.
        let top_cities = gaz.resolve_venue(probs[0].0);
        let near = top_cities.iter().any(|&c| gaz.distance(c, city) <= 100.0);
        assert!(
            near,
            "top venue {:?} not near {}",
            gaz.venue(probs[0].0).name,
            gaz.city(city).full_name()
        );
        // Probabilities sorted descending and ≤ 1.
        for w in probs.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(probs[0].1 <= 1.0);
    }

    #[test]
    fn tweeting_probabilities_empty_city() {
        let (gaz, data) = data();
        // A synthetic city id with (almost surely) no registered users:
        // find one with zero count.
        let mut counts = vec![0u32; gaz.num_cities()];
        for r in data.dataset.registered.iter().flatten() {
            counts[r.index()] += 1;
        }
        if let Some(empty) = counts.iter().position(|&c| c == 0) {
            assert!(tweeting_probabilities(&data.dataset, CityId(empty as u32), 5).is_empty());
        }
    }

    #[test]
    fn showcase_user_has_split_footprint() {
        let (gaz, data) = data();
        let adj = Adjacency::build(&data.dataset);
        let user = showcase_user(&data.dataset, &data.truth, &gaz, &adj, 500.0)
            .expect("a far-separated multi-location user exists at this scale");
        let fp = user_footprint(&data.dataset, &data.truth, &adj, user);
        assert!(fp.true_locations.len() >= 2);
        assert!(gaz.distance(fp.true_locations[0], fp.true_locations[1]) >= 500.0);
        assert!(!fp.neighbor_cities.is_empty());
        // The footprint should touch both regions: some neighbor within 150
        // miles of each true location.
        for &loc in &fp.true_locations[..2] {
            let touched = fp.neighbor_cities.iter().any(|&c| gaz.distance(c, loc) <= 150.0);
            assert!(touched, "no neighbor near {}", gaz.city(loc).full_name());
        }
    }
}
