//! Shared experiment plumbing: context construction, the uniform method
//! dispatcher over the paper's six contestants, a training cache that
//! de-duplicates identical Gibbs runs, and the warm-start (snapshot +
//! fold-in) prediction path.

use mlp_baselines::{BaseC, BaseCConfig, BaseU, BaseUConfig, HomePredictor, VotingClassifier};
use mlp_core::{
    FoldInConfig, FoldInEngine, Mlp, MlpConfig, MlpResult, NewUserObservations, PosteriorSnapshot,
};
use mlp_gazetteer::{CityId, Gazetteer, SynthConfig};
use mlp_social::{Dataset, Folds, GeneratedData, Generator, GeneratorConfig, UserId};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

/// The contestants of Tables 2–3 (plus the voting strawman used in the
/// ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Backstrom et al. WWW'10 (network).
    BaseU,
    /// Cheng et al. CIKM'10 (content).
    BaseC,
    /// Majority vote of labeled neighbors (related-work strawman).
    Voting,
    /// MLP with following relationships only.
    MlpU,
    /// MLP with tweeting relationships only.
    MlpC,
    /// Full MLP.
    Mlp,
}

impl Method {
    /// The five methods of the paper's Tables 2 and 3, in paper order.
    pub const PAPER_LINEUP: [Method; 5] =
        [Method::BaseU, Method::BaseC, Method::MlpU, Method::MlpC, Method::Mlp];
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Method::BaseU => "BaseU",
            Method::BaseC => "BaseC",
            Method::Voting => "Voting",
            Method::MlpU => "MLP_U",
            Method::MlpC => "MLP_C",
            Method::Mlp => "MLP",
        };
        write!(f, "{name}")
    }
}

/// Everything an experiment needs: the gazetteer, a generated dataset with
/// ground truth, the CV folds, and the MLP configuration to use.
pub struct ExperimentContext {
    /// Candidate locations and venue vocabulary.
    pub gaz: Gazetteer,
    /// Generated dataset + ground truth.
    pub data: GeneratedData,
    /// 5-fold split of labeled users (Sec. 5.1).
    pub folds: Folds,
    /// Inference configuration template (variant is overridden per method).
    pub mlp_config: MlpConfig,
}

impl ExperimentContext {
    /// Standard context: `num_cities`-city gazetteer, `num_users` users,
    /// everything derived deterministically from `seed`.
    pub fn standard(num_users: usize, num_cities: usize, seed: u64) -> Self {
        let gaz = Gazetteer::with_synthetic(&SynthConfig {
            total_cities: num_cities,
            seed,
            ..Default::default()
        });
        let data = Generator::new(&gaz, GeneratorConfig { num_users, seed, ..Default::default() })
            .generate();
        let folds = Folds::split(&data.dataset, 5, seed);
        Self { gaz, data, folds, mlp_config: MlpConfig { seed, ..Default::default() } }
    }

    /// Context with explicit generator and model configs.
    pub fn with_configs(
        gaz: Gazetteer,
        gen_config: GeneratorConfig,
        mlp_config: MlpConfig,
        k_folds: usize,
    ) -> Self {
        let seed = gen_config.seed;
        let data = Generator::new(&gaz, gen_config).generate();
        let folds = Folds::split(&data.dataset, k_folds, seed);
        Self { gaz, data, folds, mlp_config }
    }

    /// The MLP config for a given method variant.
    pub fn mlp_config_for(&self, method: Method) -> MlpConfig {
        let mut cfg = self.mlp_config.clone();
        cfg.variant = match method {
            Method::MlpU => mlp_core::Variant::FollowingOnly,
            Method::MlpC => mlp_core::Variant::TweetingOnly,
            _ => mlp_core::Variant::Full,
        };
        cfg
    }
}

/// One trained MLP run, kept whole: the extracted result for cold-path
/// reads, and the frozen posterior for the warm-start serving path.
pub struct TrainedMlp {
    /// The extracted inference outputs.
    pub result: MlpResult,
    /// The frozen posterior ready for fold-in.
    pub snapshot: PosteriorSnapshot,
}

/// Memoizes trained MLP runs by `(train data, config)` fingerprint.
///
/// Cross-validation used to re-run the full Gibbs chain for every call
/// that happened to need the same trained model again — ranked and
/// single-best predictions, ACC and AAD from the same fold, repeated
/// `run_method` invocations. Identical `(train, config)` inputs now train
/// once; everything after is a map lookup.
#[derive(Default)]
pub struct TrainCache {
    entries: HashMap<u64, Rc<TrainedMlp>>,
}

impl TrainCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct trainings performed through this cache.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no training has happened yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the trained model for `(gazetteer, train, cfg)`, running
    /// inference only on the first request for this exact input.
    pub fn get_or_train(
        &mut self,
        gaz: &Gazetteer,
        train: &Dataset,
        cfg: &MlpConfig,
    ) -> Rc<TrainedMlp> {
        let key = fingerprint(gaz, train, cfg);
        if let Some(hit) = self.entries.get(&key) {
            return Rc::clone(hit);
        }
        let (result, snapshot) =
            Mlp::new(gaz, train, cfg.clone()).expect("valid inputs").run_with_snapshot();
        let trained = Rc::new(TrainedMlp { result, snapshot });
        self.entries.insert(key, Rc::clone(&trained));
        trained
    }
}

/// Hash of everything that determines a training run's output: the
/// gazetteer content, the full observed dataset (labels, edges,
/// mentions), and every config field that feeds inference.
fn fingerprint(gaz: &Gazetteer, train: &Dataset, cfg: &MlpConfig) -> u64 {
    let mut h = DefaultHasher::new();
    mlp_core::snapshot::gazetteer_fingerprint(gaz).hash(&mut h);
    train.num_users.hash(&mut h);
    for r in &train.registered {
        r.map(|c| c.0).unwrap_or(u32::MAX).hash(&mut h);
    }
    for e in &train.edges {
        (e.follower.0, e.friend.0).hash(&mut h);
    }
    for m in &train.mentions {
        (m.user.0, m.venue.0).hash(&mut h);
    }
    (cfg.variant as u8).hash(&mut h);
    (cfg.iterations, cfg.burn_in, cfg.threads, cfg.seed).hash(&mut h);
    (cfg.gibbs_em, cfg.em_iterations, cfg.count_noisy_assignments).hash(&mut h);
    (cfg.candidacy_pruning, cfg.fallback_popular_k, cfg.fit_power_law_from_data).hash(&mut h);
    for x in [cfg.tau, cfg.supervision_boost, cfg.delta, cfg.rho_f, cfg.rho_t] {
        x.to_bits().hash(&mut h);
    }
    cfg.power_law.alpha.to_bits().hash(&mut h);
    cfg.power_law.beta.to_bits().hash(&mut h);
    h.finish()
}

/// Ranked home predictions for `test_users` under `method`, trained on
/// `train` (a dataset view with the test fold's labels masked). MLP-family
/// trainings are memoized in `cache`.
///
/// The inner lists are best-first and may be shorter than `k` (or empty)
/// when the method lacks signal for a user.
pub fn predict_ranked_cached(
    gaz: &Gazetteer,
    train: &Dataset,
    test_users: &[UserId],
    method: Method,
    mlp_config: &MlpConfig,
    k: usize,
    cache: &mut TrainCache,
) -> Vec<Vec<CityId>> {
    match method {
        Method::BaseU => {
            let m = BaseU::fit(gaz, train, &BaseUConfig::default());
            test_users.iter().map(|&u| m.predict_ranked(u, k)).collect()
        }
        Method::BaseC => {
            let m = BaseC::fit(gaz, train, &BaseCConfig::default());
            test_users.iter().map(|&u| m.predict_ranked(u, k)).collect()
        }
        Method::Voting => {
            let m = VotingClassifier::new(train);
            test_users.iter().map(|&u| m.predict_ranked(u, k)).collect()
        }
        Method::MlpU | Method::MlpC | Method::Mlp => {
            let mut cfg = mlp_config.clone();
            cfg.variant = match method {
                Method::MlpU => mlp_core::Variant::FollowingOnly,
                Method::MlpC => mlp_core::Variant::TweetingOnly,
                _ => mlp_core::Variant::Full,
            };
            let trained = cache.get_or_train(gaz, train, &cfg);
            test_users.iter().map(|&u| trained.result.top_k(u, k)).collect()
        }
    }
}

/// [`predict_ranked_cached`] without memoization across calls.
pub fn predict_ranked(
    gaz: &Gazetteer,
    train: &Dataset,
    test_users: &[UserId],
    method: Method,
    mlp_config: &MlpConfig,
    k: usize,
) -> Vec<Vec<CityId>> {
    predict_ranked_cached(gaz, train, test_users, method, mlp_config, k, &mut TrainCache::new())
}

/// Single-best home predictions (rank-1 of [`predict_ranked_cached`]).
pub fn predict_homes_cached(
    gaz: &Gazetteer,
    train: &Dataset,
    test_users: &[UserId],
    method: Method,
    mlp_config: &MlpConfig,
    cache: &mut TrainCache,
) -> Vec<Option<CityId>> {
    predict_ranked_cached(gaz, train, test_users, method, mlp_config, 1, cache)
        .into_iter()
        .map(|r| r.first().copied())
        .collect()
}

/// Single-best home predictions (rank-1 of [`predict_ranked`]).
pub fn predict_homes(
    gaz: &Gazetteer,
    train: &Dataset,
    test_users: &[UserId],
    method: Method,
    mlp_config: &MlpConfig,
) -> Vec<Option<CityId>> {
    predict_homes_cached(gaz, train, test_users, method, mlp_config, &mut TrainCache::new())
}

/// Warm-start ranked predictions: fold `test_users` into a frozen
/// snapshot instead of reading a trained model's profiles. Observations
/// are collected from `observed` (typically the full dataset — the
/// serving request carries the user's own edges and mentions, which the
/// *training* run never saw when the user was held out).
pub fn predict_ranked_warm(
    gaz: &Gazetteer,
    snapshot: &PosteriorSnapshot,
    observed: &Dataset,
    test_users: &[UserId],
    fold_in: FoldInConfig,
    k: usize,
) -> Vec<Vec<CityId>> {
    let engine = FoldInEngine::new(snapshot, gaz, fold_in).expect("snapshot matches gazetteer");
    let batch = NewUserObservations::batch_from_dataset(observed, test_users);
    let profiles = engine.fold_in_batch(&batch).expect("observations reference snapshot users");
    profiles.into_iter().map(|p| p.top_k(k)).collect()
}

/// Runs full MLP on a dataset (no masking) and returns the result — used by
/// the multi-location and relationship tasks, which evaluate discovery
/// rather than held-out prediction.
pub fn run_mlp(gaz: &Gazetteer, dataset: &Dataset, config: MlpConfig) -> MlpResult {
    Mlp::new(gaz, dataset, config).expect("valid inputs").run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_is_deterministic() {
        let a = ExperimentContext::standard(100, 280, 7);
        let b = ExperimentContext::standard(100, 280, 7);
        assert_eq!(a.data.dataset, b.data.dataset);
        assert_eq!(a.folds.test_users(0), b.folds.test_users(0));
    }

    #[test]
    fn method_display_matches_paper_names() {
        assert_eq!(Method::BaseU.to_string(), "BaseU");
        assert_eq!(Method::MlpU.to_string(), "MLP_U");
        assert_eq!(Method::Mlp.to_string(), "MLP");
        assert_eq!(Method::PAPER_LINEUP.len(), 5);
    }

    #[test]
    fn mlp_config_for_sets_variant() {
        let ctx = ExperimentContext::standard(60, 270, 3);
        assert_eq!(ctx.mlp_config_for(Method::MlpU).variant, mlp_core::Variant::FollowingOnly);
        assert_eq!(ctx.mlp_config_for(Method::MlpC).variant, mlp_core::Variant::TweetingOnly);
        assert_eq!(ctx.mlp_config_for(Method::Mlp).variant, mlp_core::Variant::Full);
        assert_eq!(ctx.mlp_config_for(Method::BaseU).variant, mlp_core::Variant::Full);
    }

    #[test]
    fn all_methods_produce_aligned_predictions() {
        let ctx = ExperimentContext::standard(150, 280, 11);
        let test_users = ctx.folds.test_users(0);
        let train = ctx.folds.train_view(&ctx.data.dataset, 0);
        let quick = MlpConfig { iterations: 6, burn_in: 3, ..ctx.mlp_config.clone() };
        let mut cache = TrainCache::new();
        for method in
            [Method::BaseU, Method::BaseC, Method::Voting, Method::MlpU, Method::MlpC, Method::Mlp]
        {
            let preds =
                predict_homes_cached(&ctx.gaz, &train, test_users, method, &quick, &mut cache);
            assert_eq!(preds.len(), test_users.len(), "{method}");
            let ranked =
                predict_ranked_cached(&ctx.gaz, &train, test_users, method, &quick, 3, &mut cache);
            assert_eq!(ranked.len(), test_users.len(), "{method}");
            for r in &ranked {
                assert!(r.len() <= 3);
            }
            // Single-best must be rank-1 of ranked, from the same trained
            // model (the cache guarantees it is literally the same run).
            for (p, r) in preds.iter().zip(&ranked) {
                assert_eq!(*p, r.first().copied(), "{method}");
            }
        }
        // Three MLP variants, each trained exactly once despite two
        // prediction calls per method.
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn cache_trains_identical_inputs_once() {
        let ctx = ExperimentContext::standard(100, 280, 13);
        let train = ctx.folds.train_view(&ctx.data.dataset, 0);
        let quick = MlpConfig { iterations: 4, burn_in: 2, ..ctx.mlp_config.clone() };
        let mut cache = TrainCache::new();
        let a = cache.get_or_train(&ctx.gaz, &train, &quick);
        let b = cache.get_or_train(&ctx.gaz, &train, &quick);
        assert!(Rc::ptr_eq(&a, &b), "identical inputs must share one training");
        assert_eq!(cache.len(), 1);
        // A different fold view (different label mask) is a different run.
        let other = ctx.folds.train_view(&ctx.data.dataset, 1);
        cache.get_or_train(&ctx.gaz, &other, &quick);
        assert_eq!(cache.len(), 2);
        // So is a different seed.
        let reseeded = MlpConfig { seed: 999, ..quick };
        cache.get_or_train(&ctx.gaz, &train, &reseeded);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn warm_predictions_align_with_test_users() {
        let ctx = ExperimentContext::standard(150, 280, 17);
        let test_users = ctx.folds.test_users(0);
        let train = ctx.folds.train_view(&ctx.data.dataset, 0);
        let quick = MlpConfig { iterations: 6, burn_in: 3, ..ctx.mlp_config.clone() };
        let mut cache = TrainCache::new();
        let trained = cache.get_or_train(&ctx.gaz, &train, &quick);
        let warm = predict_ranked_warm(
            &ctx.gaz,
            &trained.snapshot,
            &ctx.data.dataset,
            test_users,
            FoldInConfig::default(),
            3,
        );
        assert_eq!(warm.len(), test_users.len());
        for r in &warm {
            assert!(!r.is_empty() && r.len() <= 3);
        }
    }
}
