//! Shared experiment plumbing: context construction and the uniform
//! method dispatcher over the paper's six contestants.

use mlp_baselines::{BaseC, BaseCConfig, BaseU, BaseUConfig, HomePredictor, VotingClassifier};
use mlp_core::{Mlp, MlpConfig, MlpResult};
use mlp_gazetteer::{CityId, Gazetteer, SynthConfig};
use mlp_social::{Dataset, Folds, GeneratedData, Generator, GeneratorConfig, UserId};

/// The contestants of Tables 2–3 (plus the voting strawman used in the
/// ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Backstrom et al. WWW'10 (network).
    BaseU,
    /// Cheng et al. CIKM'10 (content).
    BaseC,
    /// Majority vote of labeled neighbors (related-work strawman).
    Voting,
    /// MLP with following relationships only.
    MlpU,
    /// MLP with tweeting relationships only.
    MlpC,
    /// Full MLP.
    Mlp,
}

impl Method {
    /// The five methods of the paper's Tables 2 and 3, in paper order.
    pub const PAPER_LINEUP: [Method; 5] =
        [Method::BaseU, Method::BaseC, Method::MlpU, Method::MlpC, Method::Mlp];
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Method::BaseU => "BaseU",
            Method::BaseC => "BaseC",
            Method::Voting => "Voting",
            Method::MlpU => "MLP_U",
            Method::MlpC => "MLP_C",
            Method::Mlp => "MLP",
        };
        write!(f, "{name}")
    }
}

/// Everything an experiment needs: the gazetteer, a generated dataset with
/// ground truth, the CV folds, and the MLP configuration to use.
pub struct ExperimentContext {
    /// Candidate locations and venue vocabulary.
    pub gaz: Gazetteer,
    /// Generated dataset + ground truth.
    pub data: GeneratedData,
    /// 5-fold split of labeled users (Sec. 5.1).
    pub folds: Folds,
    /// Inference configuration template (variant is overridden per method).
    pub mlp_config: MlpConfig,
}

impl ExperimentContext {
    /// Standard context: `num_cities`-city gazetteer, `num_users` users,
    /// everything derived deterministically from `seed`.
    pub fn standard(num_users: usize, num_cities: usize, seed: u64) -> Self {
        let gaz = Gazetteer::with_synthetic(&SynthConfig {
            total_cities: num_cities,
            seed,
            ..Default::default()
        });
        let data = Generator::new(&gaz, GeneratorConfig { num_users, seed, ..Default::default() })
            .generate();
        let folds = Folds::split(&data.dataset, 5, seed);
        Self { gaz, data, folds, mlp_config: MlpConfig { seed, ..Default::default() } }
    }

    /// Context with explicit generator and model configs.
    pub fn with_configs(
        gaz: Gazetteer,
        gen_config: GeneratorConfig,
        mlp_config: MlpConfig,
        k_folds: usize,
    ) -> Self {
        let seed = gen_config.seed;
        let data = Generator::new(&gaz, gen_config).generate();
        let folds = Folds::split(&data.dataset, k_folds, seed);
        Self { gaz, data, folds, mlp_config }
    }

    /// The MLP config for a given method variant.
    pub fn mlp_config_for(&self, method: Method) -> MlpConfig {
        let mut cfg = self.mlp_config.clone();
        cfg.variant = match method {
            Method::MlpU => mlp_core::Variant::FollowingOnly,
            Method::MlpC => mlp_core::Variant::TweetingOnly,
            _ => mlp_core::Variant::Full,
        };
        cfg
    }
}

/// Ranked home predictions for `test_users` under `method`, trained on
/// `train` (a dataset view with the test fold's labels masked).
///
/// The inner lists are best-first and may be shorter than `k` (or empty)
/// when the method lacks signal for a user.
pub fn predict_ranked(
    gaz: &Gazetteer,
    train: &Dataset,
    test_users: &[UserId],
    method: Method,
    mlp_config: &MlpConfig,
    k: usize,
) -> Vec<Vec<CityId>> {
    match method {
        Method::BaseU => {
            let m = BaseU::fit(gaz, train, &BaseUConfig::default());
            test_users.iter().map(|&u| m.predict_ranked(u, k)).collect()
        }
        Method::BaseC => {
            let m = BaseC::fit(gaz, train, &BaseCConfig::default());
            test_users.iter().map(|&u| m.predict_ranked(u, k)).collect()
        }
        Method::Voting => {
            let m = VotingClassifier::new(train);
            test_users.iter().map(|&u| m.predict_ranked(u, k)).collect()
        }
        Method::MlpU | Method::MlpC | Method::Mlp => {
            let mut cfg = mlp_config.clone();
            cfg.variant = match method {
                Method::MlpU => mlp_core::Variant::FollowingOnly,
                Method::MlpC => mlp_core::Variant::TweetingOnly,
                _ => mlp_core::Variant::Full,
            };
            let result = Mlp::new(gaz, train, cfg).expect("valid inputs").run();
            test_users.iter().map(|&u| result.top_k(u, k)).collect()
        }
    }
}

/// Single-best home predictions (rank-1 of [`predict_ranked`]).
pub fn predict_homes(
    gaz: &Gazetteer,
    train: &Dataset,
    test_users: &[UserId],
    method: Method,
    mlp_config: &MlpConfig,
) -> Vec<Option<CityId>> {
    predict_ranked(gaz, train, test_users, method, mlp_config, 1)
        .into_iter()
        .map(|r| r.first().copied())
        .collect()
}

/// Runs full MLP on a dataset (no masking) and returns the result — used by
/// the multi-location and relationship tasks, which evaluate discovery
/// rather than held-out prediction.
pub fn run_mlp(gaz: &Gazetteer, dataset: &Dataset, config: MlpConfig) -> MlpResult {
    Mlp::new(gaz, dataset, config).expect("valid inputs").run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_is_deterministic() {
        let a = ExperimentContext::standard(100, 280, 7);
        let b = ExperimentContext::standard(100, 280, 7);
        assert_eq!(a.data.dataset, b.data.dataset);
        assert_eq!(a.folds.test_users(0), b.folds.test_users(0));
    }

    #[test]
    fn method_display_matches_paper_names() {
        assert_eq!(Method::BaseU.to_string(), "BaseU");
        assert_eq!(Method::MlpU.to_string(), "MLP_U");
        assert_eq!(Method::Mlp.to_string(), "MLP");
        assert_eq!(Method::PAPER_LINEUP.len(), 5);
    }

    #[test]
    fn mlp_config_for_sets_variant() {
        let ctx = ExperimentContext::standard(60, 270, 3);
        assert_eq!(ctx.mlp_config_for(Method::MlpU).variant, mlp_core::Variant::FollowingOnly);
        assert_eq!(ctx.mlp_config_for(Method::MlpC).variant, mlp_core::Variant::TweetingOnly);
        assert_eq!(ctx.mlp_config_for(Method::Mlp).variant, mlp_core::Variant::Full);
        assert_eq!(ctx.mlp_config_for(Method::BaseU).variant, mlp_core::Variant::Full);
    }

    #[test]
    fn all_methods_produce_aligned_predictions() {
        let ctx = ExperimentContext::standard(150, 280, 11);
        let test_users = ctx.folds.test_users(0);
        let train = ctx.folds.train_view(&ctx.data.dataset, 0);
        let quick = MlpConfig { iterations: 6, burn_in: 3, ..ctx.mlp_config.clone() };
        for method in
            [Method::BaseU, Method::BaseC, Method::Voting, Method::MlpU, Method::MlpC, Method::Mlp]
        {
            let preds = predict_homes(&ctx.gaz, &train, test_users, method, &quick);
            assert_eq!(preds.len(), test_users.len(), "{method}");
            let ranked = predict_ranked(&ctx.gaz, &train, test_users, method, &quick, 3);
            assert_eq!(ranked.len(), test_users.len(), "{method}");
            for r in &ranked {
                assert!(r.len() <= 3);
            }
        }
    }
}
