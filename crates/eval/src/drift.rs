//! Drift measurement for online posterior refresh.
//!
//! A [`mlp_core::ServingEngine`] refresh commits fold-in posteriors
//! instead of retraining, which is an approximation: absorbed users are
//! inferred against frozen counts, and trained users' rows never move. The honest
//! question for a bounded-staleness policy is *how far* the refreshed
//! posterior has drifted from what a cold retrain on the same data would
//! serve. This module answers it with the paper's own yardstick —
//! ACC@100 over the newly arrived users — comparing:
//!
//! * **refreshed** — train on the first `train_users` users only, then
//!   absorb + commit everyone else through the engine in batches, and
//!   read the committed MAP homes;
//! * **retrained** — run full Gibbs from scratch on the whole corpus with
//!   the new users' labels masked (they arrive unlabeled in both worlds),
//!   and read the trained homes.
//!
//! The gap feeds [`mlp_core::ServingEngine::record_drift`], closing the
//! loop: serve → measure → refresh when the policy says so.

use mlp_core::{FoldInConfig, Mlp, MlpConfig, ServingEngine};
use mlp_gazetteer::{CityId, Gazetteer};
use mlp_social::{GeneratedData, UserId};

use crate::metrics::acc_at_m;

/// Refreshed vs cold-retrained serving accuracy over the same new users.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftReport {
    /// ACC@100 of the online-refreshed posterior on the new users.
    pub refreshed_acc_at_100: f64,
    /// ACC@100 of a cold retrain (labels of the new users masked).
    pub retrained_acc_at_100: f64,
    /// How many new users were measured.
    pub new_users: usize,
    /// Commits the updater performed while absorbing them.
    pub commits: usize,
}

impl DriftReport {
    /// The staleness metric: how far refreshed serving trails the cold
    /// retrain (clamped at zero — being *ahead* is not drift).
    pub fn drift(&self) -> f64 {
        (self.retrained_acc_at_100 - self.refreshed_acc_at_100).max(0.0)
    }
}

/// Runs the refreshed-vs-retrained comparison on one generated corpus.
///
/// Users `0..train_users` form the offline training set D₀; users
/// `train_users..` are D₁, absorbed through a [`ServingEngine`] refresh in
/// batches of `batch` (each batch committed — and its epoch published —
/// before the next is absorbed, so later arrivals may cite earlier ones as
/// neighbors). Deterministic end to end for fixed inputs.
///
/// Since the PR 5 facade migration, `fold_in` must satisfy the engine's
/// strict `FoldInConfig::validate` gate (nonzero sweeps/threads, burn-in
/// below the chain) — the low-level layer's permissive clamps (e.g.
/// `threads: 0` as sequential) are rejected here with a typed message.
pub fn online_refresh_drift(
    gaz: &Gazetteer,
    data: &GeneratedData,
    train_users: usize,
    mlp_config: &MlpConfig,
    fold_in: FoldInConfig,
    batch: usize,
) -> Result<DriftReport, String> {
    let n = data.dataset.num_users();
    if train_users == 0 || train_users >= n {
        return Err(format!("train_users must split the corpus, got {train_users} of {n}"));
    }
    let new_users: Vec<UserId> = (train_users as u32..n as u32).map(UserId).collect();

    // Refreshed path: D₀ training, D₁ absorbed online through the facade.
    let engine = ServingEngine::builder(gaz)
        .mlp_config(mlp_config.clone())
        .fold_in_config(fold_in)
        .train(&data.dataset.prefix(train_users))
        .map_err(|e| e.to_string())?;
    engine
        .refresh_from_dataset(&data.dataset, &new_users, batch.max(1))
        .map_err(|e| e.to_string())?;
    drift_for_engine(&engine, data, &new_users, mlp_config)
}

/// The measurement half of [`online_refresh_drift`], against a
/// caller-owned engine that has already absorbed `new_users`: reads
/// their committed MAP homes off the engine's published snapshot, runs
/// the masked cold retrain, and reports both ACC@100 numbers.
///
/// Splitting this out lets one long-lived [`ServingEngine`] be measured
/// at several comparison points (the scenario engine's per-tick loop,
/// a drift-threshold sweep) instead of rebuilding the serving stack per
/// measurement — with results byte-identical to the one-shot entry
/// point, which now delegates here.
pub fn drift_for_engine(
    engine: &ServingEngine<'_>,
    data: &GeneratedData,
    new_users: &[UserId],
    mlp_config: &MlpConfig,
) -> Result<DriftReport, String> {
    let gaz = engine.gazetteer();
    let snapshot = engine.snapshot();
    if let Some(u) = new_users.iter().find(|u| u.index() >= snapshot.num_users()) {
        return Err(format!("user {} has not been absorbed by the engine", u.0));
    }
    let refreshed: Vec<Option<CityId>> =
        new_users.iter().map(|&u| Some(snapshot.users.home(u))).collect();

    // Cold path: full corpus, new users' labels masked.
    let masked = data.dataset.mask_users(new_users);
    let retrained_result = Mlp::new(gaz, &masked, mlp_config.clone())?.run();
    let retrained: Vec<Option<CityId>> =
        new_users.iter().map(|&u| Some(retrained_result.home(u))).collect();

    let truths: Vec<CityId> = new_users.iter().map(|&u| data.truth.home(u)).collect();
    Ok(DriftReport {
        refreshed_acc_at_100: acc_at_m(gaz, &refreshed, &truths, 100.0),
        retrained_acc_at_100: acc_at_m(gaz, &retrained, &truths, 100.0),
        new_users: new_users.len(),
        commits: engine.commits(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_social::{Generator, GeneratorConfig};

    #[test]
    fn refreshed_serving_tracks_cold_retrain() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 400, seed: 4201, ..Default::default() },
        )
        .generate();
        let cfg = MlpConfig { iterations: 8, burn_in: 4, seed: 4201, ..Default::default() };
        let report =
            online_refresh_drift(&gaz, &data, 320, &cfg, FoldInConfig::default(), 20).unwrap();
        assert_eq!(report.new_users, 80);
        assert_eq!(report.commits, 4);
        assert!(report.retrained_acc_at_100 > 0.4, "cold baseline collapsed: {report:?}");
        assert!(
            report.refreshed_acc_at_100 > 0.3,
            "refreshed serving not meaningfully above chance: {report:?}"
        );
        assert!(report.drift() < 0.15, "online refresh drifted too far: {report:?}");
    }

    #[test]
    fn drift_for_engine_reuses_one_engine_across_points() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 260, seed: 4205, ..Default::default() },
        )
        .generate();
        let cfg = MlpConfig { iterations: 4, burn_in: 2, seed: 4205, ..Default::default() };
        let engine = ServingEngine::builder(&gaz)
            .mlp_config(cfg.clone())
            .fold_in_config(FoldInConfig::default())
            .train(&data.dataset.prefix(200))
            .unwrap();

        // First comparison point: 30 users absorbed, measured in place.
        let first: Vec<UserId> = (200..230).map(UserId).collect();
        engine.refresh_from_dataset(&data.dataset, &first, 15).unwrap();
        let r1 = drift_for_engine(&engine, &data, &first, &cfg).unwrap();
        assert_eq!(r1.new_users, 30);
        assert_eq!(r1.commits, 2);

        // A user the engine has not absorbed is a typed error, not a panic.
        assert!(drift_for_engine(&engine, &data, &[UserId(250)], &cfg)
            .unwrap_err()
            .contains("not been absorbed"));

        // Second point on the *same* engine — and the one-shot entry
        // point over the same split agrees byte for byte (same batch
        // boundaries, same absorb order, same masked retrain).
        let rest: Vec<UserId> = (230..260).map(UserId).collect();
        engine.refresh_from_dataset(&data.dataset, &rest, 15).unwrap();
        let all: Vec<UserId> = (200..260).map(UserId).collect();
        let reused = drift_for_engine(&engine, &data, &all, &cfg).unwrap();
        let one_shot =
            online_refresh_drift(&gaz, &data, 200, &cfg, FoldInConfig::default(), 15).unwrap();
        assert_eq!(reused, one_shot, "engine reuse must match the one-shot path exactly");
    }

    #[test]
    fn degenerate_splits_are_rejected() {
        let gaz = Gazetteer::us_cities();
        let data = Generator::new(
            &gaz,
            GeneratorConfig { num_users: 50, seed: 4203, ..Default::default() },
        )
        .generate();
        let cfg = MlpConfig { iterations: 2, burn_in: 1, seed: 4203, ..Default::default() };
        for bad in [0usize, 50, 80] {
            assert!(
                online_refresh_drift(&gaz, &data, bad, &cfg, FoldInConfig::default(), 16).is_err()
            );
        }
    }
}
