//! The closed loop over an event-scripted world: serve → measure →
//! decide → refresh-or-retrain, tick by tick.
//!
//! [`mlp_social::ScenarioWorld`] makes the synthetic Twitter move
//! (arrivals, migration waves, churn, label noise — see
//! `mlp_social::scenario`); this module drives a live
//! [`mlp_core::ServingEngine`] against it and records the
//! accuracy-over-time curve the whole subsystem exists to produce. Per
//! tick:
//!
//! 1. the world advances ([`mlp_social::ScenarioWorld::tick`]);
//! 2. serving traffic is replayed against the engine's *current* epoch
//!    (scaled by the tick's traffic multiplier, wall-clock timed);
//! 3. ACC@100 of the published posterior over every absorbed user's
//!    current true home is measured — the *served* accuracy — and its
//!    gap to the post-(re)train reference accuracy is recorded as
//!    drift ([`mlp_core::ServingEngine::record_drift`]);
//! 4. the engine's decision layer
//!    ([`mlp_core::ServingEngine::plan_refresh`]) picks the move:
//!    steady (nothing pending, policy quiet), incremental refresh of
//!    pending arrivals, or — when the [`mlp_core::StalenessPolicy`]
//!    fired — a full in-place retrain
//!    ([`mlp_core::ServingEngine::retrain_from_dataset`]), which resets
//!    the reference accuracy;
//! 5. the post-action *committed* accuracy is measured.
//!
//! Everything but wall-clock latency is deterministic:
//! [`ScenarioReport::determinism_fingerprint`] hashes the full metric
//! stream (accuracies at exact bit patterns, actions, epochs, event
//! fingerprint) and repeat runs of the same `(seed, script)` match it
//! exactly — pinned by the integration suite.

use crate::metrics::acc_at_m;
use crate::table::TextTable;
use mlp_core::{
    FoldInConfig, MlpConfig, ProfileRequest, RetrainDecision, ServingEngine, StalenessPolicy,
};
use mlp_gazetteer::{CityId, Gazetteer};
use mlp_sampling::{Pcg64, SplitMix64};
use mlp_social::{GeneratorConfig, ScenarioScript, ScenarioWorld, UserId};

/// Everything a scenario run needs besides the script itself.
#[derive(Debug, Clone)]
pub struct ScenarioRunConfig {
    /// World generation knobs (the `num_users` field is overridden by
    /// the script's `initial_users`; `seed` is the master seed for the
    /// whole run).
    pub generator: GeneratorConfig,
    /// Training hyper-parameters for the initial train and every
    /// retrain.
    pub mlp: MlpConfig,
    /// Per-request fold-in configuration.
    pub fold_in: FoldInConfig,
    /// When the engine escalates from incremental refresh to a full
    /// retrain. The default disables the commit budget (steady arrivals
    /// would spend any budget on schedule regardless of quality) and
    /// retrains on a drift of more than ten accuracy points.
    pub staleness: StalenessPolicy,
    /// Users per refresh commit.
    pub refresh_batch: usize,
    /// Serving requests replayed per tick at traffic level 1.0.
    pub requests_per_tick: usize,
}

impl Default for ScenarioRunConfig {
    fn default() -> Self {
        Self {
            generator: GeneratorConfig::default(),
            mlp: MlpConfig { iterations: 8, burn_in: 4, seed: 2012, ..Default::default() },
            fold_in: FoldInConfig::default(),
            staleness: StalenessPolicy { refresh_after_commits: 0, drift_threshold: 0.10 },
            refresh_batch: 32,
            requests_per_tick: 8,
        }
    }
}

/// What the closed loop did on one tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickAction {
    /// Nothing pending, policy quiet.
    Steady,
    /// Pending arrivals absorbed incrementally.
    Refresh {
        /// Users appended to the posterior.
        appended: usize,
        /// Commits (= epochs) published.
        commits: usize,
    },
    /// The staleness policy fired; the engine retrained in place.
    Retrain {
        /// Users in the retrained posterior.
        trained_users: usize,
    },
}

impl TickAction {
    fn label(&self) -> String {
        match self {
            TickAction::Steady => "steady".into(),
            TickAction::Refresh { appended, .. } => format!("refresh+{appended}"),
            TickAction::Retrain { trained_users } => format!("RETRAIN@{trained_users}"),
        }
    }
}

/// One row of the accuracy-over-time curve.
#[derive(Debug, Clone, PartialEq)]
pub struct TickMetrics {
    /// Tick number (1-based).
    pub tick: usize,
    /// World users after the tick.
    pub users: usize,
    /// Users the posterior knew while serving this tick (pre-action).
    pub absorbed: usize,
    /// ACC@100 of the published posterior over all absorbed users'
    /// current true homes, *before* this tick's action — what the tick
    /// actually served.
    pub acc_served: f64,
    /// The same measure after the tick's action committed.
    pub acc_committed: f64,
    /// Drift recorded this tick: reference accuracy (measured right
    /// after the last train/retrain) minus `acc_served`, clamped at 0.
    pub drift: f64,
    /// What the decision layer did.
    pub action: TickAction,
    /// Published epoch after the tick.
    pub epoch: u64,
    /// Users who arrived this tick.
    pub new_users: usize,
    /// Users whose home moved this tick.
    pub migrated: usize,
    /// Edges added minus nothing — raw add count.
    pub edges_added: usize,
    /// Edges removed.
    pub edges_removed: usize,
    /// Registered labels corrupted.
    pub labels_corrupted: usize,
    /// The tick's traffic multiplier.
    pub traffic: f64,
    /// Serving requests replayed.
    pub requests: usize,
    /// Wall-clock time serving them, milliseconds. The one
    /// non-deterministic field — excluded from the fingerprint.
    pub serve_ms: f64,
}

/// The machine-readable product of one scenario run: the per-tick
/// accuracy-over-time curve plus run-level provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name (from the script).
    pub scenario: String,
    /// Master seed.
    pub seed: u64,
    /// Users before tick 1.
    pub initial_users: usize,
    /// ACC@100 right after the initial train (the first reference).
    pub initial_acc: f64,
    /// One row per tick, in order.
    pub ticks: Vec<TickMetrics>,
    /// The world's event-stream fingerprint after the last tick.
    pub event_fingerprint: u64,
}

impl ScenarioReport {
    /// Ticks that absorbed users incrementally.
    pub fn refreshes(&self) -> usize {
        self.ticks.iter().filter(|t| matches!(t.action, TickAction::Refresh { .. })).count()
    }

    /// Ticks that retrained in place.
    pub fn retrains(&self) -> usize {
        self.ticks.iter().filter(|t| matches!(t.action, TickAction::Retrain { .. })).count()
    }

    /// The lowest served accuracy across ticks (the dip a staleness
    /// event caused), with its tick number.
    pub fn min_acc_served(&self) -> Option<(usize, f64)> {
        self.ticks.iter().map(|t| (t.tick, t.acc_served)).min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// The last tick's committed accuracy.
    pub fn final_acc_committed(&self) -> Option<f64> {
        self.ticks.last().map(|t| t.acc_committed)
    }

    /// FNV-1a over every deterministic field of the run: scenario name,
    /// seed, exact accuracy bit patterns, actions, epochs, world deltas,
    /// and the world's own event fingerprint. Wall-clock latency is the
    /// only field left out. Repeat runs of the same `(seed, script)`
    /// produce the same value.
    pub fn determinism_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut fold = |w: u64| {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for b in self.scenario.bytes() {
            fold(b as u64);
        }
        fold(self.seed);
        fold(self.initial_users as u64);
        fold(self.initial_acc.to_bits());
        fold(self.event_fingerprint);
        for t in &self.ticks {
            fold(t.tick as u64);
            fold(t.users as u64);
            fold(t.absorbed as u64);
            fold(t.acc_served.to_bits());
            fold(t.acc_committed.to_bits());
            fold(t.drift.to_bits());
            match t.action {
                TickAction::Steady => fold(0),
                TickAction::Refresh { appended, commits } => {
                    fold(1);
                    fold(appended as u64);
                    fold(commits as u64);
                }
                TickAction::Retrain { trained_users } => {
                    fold(2);
                    fold(trained_users as u64);
                }
            }
            fold(t.epoch);
            fold(t.new_users as u64);
            fold(t.migrated as u64);
            fold(t.edges_added as u64);
            fold(t.edges_removed as u64);
            fold(t.labels_corrupted as u64);
            fold(t.traffic.to_bits());
            fold(t.requests as u64);
        }
        h
    }

    /// The accuracy-over-time curve as a fixed-width text table.
    pub fn render_table(&self) -> String {
        let mut table = TextTable::new(vec![
            "tick",
            "users",
            "absorbed",
            "acc_served",
            "acc_comm",
            "drift",
            "action",
            "epoch",
            "new",
            "moved",
            "e+",
            "e-",
            "lbl!",
            "req",
            "ms",
        ]);
        for t in &self.ticks {
            table.add_row(vec![
                t.tick.to_string(),
                t.users.to_string(),
                t.absorbed.to_string(),
                format!("{:.4}", t.acc_served),
                format!("{:.4}", t.acc_committed),
                format!("{:.4}", t.drift),
                t.action.label(),
                t.epoch.to_string(),
                t.new_users.to_string(),
                t.migrated.to_string(),
                t.edges_added.to_string(),
                t.edges_removed.to_string(),
                t.labels_corrupted.to_string(),
                t.requests.to_string(),
                format!("{:.2}", t.serve_ms),
            ]);
        }
        table.render()
    }

    /// The report as a self-contained JSON object (hand-rolled — the
    /// repo carries no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scenario\": \"{}\",\n", self.scenario));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"initial_users\": {},\n", self.initial_users));
        out.push_str(&format!("  \"initial_acc_at_100\": {:.6},\n", self.initial_acc));
        out.push_str(&format!("  \"refreshes\": {},\n", self.refreshes()));
        out.push_str(&format!("  \"retrains\": {},\n", self.retrains()));
        out.push_str(&format!("  \"event_fingerprint\": \"{:#018x}\",\n", self.event_fingerprint));
        out.push_str(&format!(
            "  \"determinism_fingerprint\": \"{:#018x}\",\n",
            self.determinism_fingerprint()
        ));
        out.push_str("  \"ticks\": [\n");
        for (i, t) in self.ticks.iter().enumerate() {
            let action = match t.action {
                TickAction::Steady => "\"steady\"".to_string(),
                TickAction::Refresh { appended, commits } => {
                    format!("\"refresh\", \"appended\": {appended}, \"commits\": {commits}")
                }
                TickAction::Retrain { trained_users } => {
                    format!("\"retrain\", \"trained_users\": {trained_users}")
                }
            };
            out.push_str(&format!(
                "    {{\"tick\": {}, \"users\": {}, \"absorbed\": {}, \
                 \"acc_served\": {:.6}, \"acc_committed\": {:.6}, \"drift\": {:.6}, \
                 \"action\": {action}, \"epoch\": {}, \"new_users\": {}, \"migrated\": {}, \
                 \"edges_added\": {}, \"edges_removed\": {}, \"labels_corrupted\": {}, \
                 \"traffic\": {:.3}, \"requests\": {}, \"serve_ms\": {:.3}}}{}\n",
                t.tick,
                t.users,
                t.absorbed,
                t.acc_served,
                t.acc_committed,
                t.drift,
                t.epoch,
                t.new_users,
                t.migrated,
                t.edges_added,
                t.edges_removed,
                t.labels_corrupted,
                t.traffic,
                t.requests,
                t.serve_ms,
                if i + 1 < self.ticks.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// ACC@100 of the published posterior over every absorbed user's
/// *current* true home.
fn measure_acc(gaz: &Gazetteer, engine: &ServingEngine<'_>, world: &ScenarioWorld<'_>) -> f64 {
    let snapshot = engine.snapshot();
    let absorbed = snapshot.num_users();
    let predictions: Vec<Option<CityId>> =
        (0..absorbed as u32).map(|u| Some(snapshot.users.home(UserId(u)))).collect();
    let truths: Vec<CityId> = (0..absorbed as u32).map(|u| world.true_home(UserId(u))).collect();
    acc_at_m(gaz, &predictions, &truths, 100.0)
}

/// RNG namespace for the per-tick serving-traffic sampler — disjoint
/// from the world's own streams (which use `tick << 20 | op`) by the
/// high salt bits.
const SERVE_STREAM_SALT: u64 = 0x5E7F_0000_0000_0000;

/// Runs `script` end to end: builds the world, cold-trains the engine on
/// the initial dataset, then drives the closed loop for `script.ticks`
/// ticks. See the [module docs](self) for the per-tick sequence.
pub fn run_scenario(
    gaz: &Gazetteer,
    script: ScenarioScript,
    config: &ScenarioRunConfig,
) -> Result<ScenarioReport, String> {
    let seed = config.generator.seed;
    let mut world = ScenarioWorld::new(gaz, config.generator.clone(), script)?;
    let engine = ServingEngine::builder(gaz)
        .mlp_config(config.mlp.clone())
        .fold_in_config(config.fold_in.clone())
        .staleness_policy(config.staleness)
        .train(world.dataset())
        .map_err(|e| e.to_string())?;

    let initial_acc = measure_acc(gaz, &engine, &world);
    let mut reference_acc = initial_acc;
    let mut report = ScenarioReport {
        scenario: world.script().name.clone(),
        seed,
        initial_users: world.script().initial_users,
        initial_acc,
        ticks: Vec::with_capacity(world.script().ticks),
        event_fingerprint: 0,
    };

    for _ in 0..world.script().ticks {
        let delta = world.tick();

        // 1. Replay serving traffic against the pre-maintenance epoch —
        // the posterior real requests would have hit this tick.
        let requests = ((config.requests_per_tick as f64) * delta.traffic).round() as usize;
        let absorbed = engine.snapshot().num_users();
        let mut serve_rng =
            Pcg64::new(SplitMix64::derive(seed ^ SERVE_STREAM_SALT, delta.tick as u64));
        let ids: Vec<UserId> = (0..requests)
            .map(|_| UserId(serve_rng.next_bounded(world.num_users()) as u32))
            .collect();
        let mut reqs = ProfileRequest::batch_from_dataset(world.dataset(), &ids);
        for r in &mut reqs {
            r.observations.neighbors.retain(|p| p.index() < absorbed);
        }
        let served_at = std::time::Instant::now();
        engine.profile_batch(&reqs).map_err(|e| format!("tick {} serve: {e}", delta.tick))?;
        let serve_ms = served_at.elapsed().as_secs_f64() * 1e3;

        // 2. Measure what the tick served and record the drift signal.
        let acc_served = measure_acc(gaz, &engine, &world);
        let drift = (reference_acc - acc_served).max(0.0);
        engine.record_drift(drift);

        // 3. Let the engine's decision layer pick the move, and do it.
        let pending = world.num_users() - absorbed;
        let action = match engine.plan_refresh(pending) {
            RetrainDecision::Steady => TickAction::Steady,
            RetrainDecision::Refresh => {
                let ids: Vec<UserId> =
                    (absorbed as u32..world.num_users() as u32).map(UserId).collect();
                let r = engine
                    .refresh_from_dataset(world.dataset(), &ids, config.refresh_batch)
                    .map_err(|e| format!("tick {} refresh: {e}", delta.tick))?;
                TickAction::Refresh { appended: r.appended(), commits: r.commits.len() }
            }
            RetrainDecision::Retrain => {
                let r = engine
                    .retrain_from_dataset(world.dataset(), config.mlp.clone())
                    .map_err(|e| format!("tick {} retrain: {e}", delta.tick))?;
                TickAction::Retrain { trained_users: r.trained_users }
            }
        };

        // 4. Post-action accuracy; a retrain resets the reference.
        let acc_committed = measure_acc(gaz, &engine, &world);
        if matches!(action, TickAction::Retrain { .. }) {
            reference_acc = acc_committed;
        }

        report.ticks.push(TickMetrics {
            tick: delta.tick,
            users: world.num_users(),
            absorbed,
            acc_served,
            acc_committed,
            drift,
            action,
            epoch: engine.epoch(),
            new_users: delta.new_users.len(),
            migrated: delta.migrated.len(),
            edges_added: delta.edges_added,
            edges_removed: delta.edges_removed,
            labels_corrupted: delta.labels_corrupted,
            traffic: delta.traffic,
            requests,
            serve_ms,
        });
    }
    report.event_fingerprint = world.event_fingerprint();
    Ok(report)
}
