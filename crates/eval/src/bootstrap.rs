//! Bootstrap confidence intervals for the evaluation metrics.
//!
//! The paper reports point estimates averaged over five folds; for a
//! library release we additionally want uncertainty on any accuracy-style
//! metric. This module implements the percentile bootstrap over per-item
//! binary outcomes (hit/miss), which covers ACC@m, DP/DR contributions,
//! and relationship accuracy alike.

use mlp_sampling::{Pcg64, SplitMix64};

/// A bootstrap interval around a mean of binary (or bounded) outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapInterval {
    /// Point estimate (sample mean).
    pub mean: f64,
    /// Lower percentile bound.
    pub lower: f64,
    /// Upper percentile bound.
    pub upper: f64,
    /// Confidence level, e.g. 0.95.
    pub confidence: f64,
}

impl BootstrapInterval {
    /// Whether another interval is disjoint from (entirely above or below)
    /// this one — a quick significance read-out for method comparisons.
    pub fn disjoint_from(&self, other: &BootstrapInterval) -> bool {
        self.upper < other.lower || other.upper < self.lower
    }
}

/// Percentile bootstrap over per-item outcomes.
///
/// `outcomes` are the per-test-item scores (1.0 = hit, 0.0 = miss, or any
/// bounded per-item contribution). Returns `None` on an empty slice.
pub fn bootstrap_mean(
    outcomes: &[f64],
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> Option<BootstrapInterval> {
    if outcomes.is_empty() || !(confidence > 0.0 && confidence < 1.0) || resamples == 0 {
        return None;
    }
    let n = outcomes.len();
    let mean = outcomes.iter().sum::<f64>() / n as f64;
    let mut rng = Pcg64::new(SplitMix64::derive(seed, 0xB007));
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut total = 0.0;
        for _ in 0..n {
            total += outcomes[rng.next_bounded(n)];
        }
        means.push(total / n as f64);
    }
    means.sort_by(f64::total_cmp);
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((resamples as f64 * alpha) as usize).min(resamples - 1);
    let hi_idx = ((resamples as f64 * (1.0 - alpha)) as usize).min(resamples - 1);
    Some(BootstrapInterval { mean, lower: means[lo_idx], upper: means[hi_idx], confidence })
}

/// Convenience: bootstrap ACC@m-style hit vectors (bools).
pub fn bootstrap_accuracy(
    hits: &[bool],
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> Option<BootstrapInterval> {
    let outcomes: Vec<f64> = hits.iter().map(|&h| h as u8 as f64).collect();
    bootstrap_mean(&outcomes, resamples, confidence, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_brackets_the_mean() {
        let outcomes: Vec<f64> = (0..200).map(|i| (i % 10 < 6) as u8 as f64).collect();
        let ci = bootstrap_mean(&outcomes, 2_000, 0.95, 1).unwrap();
        assert!((ci.mean - 0.6).abs() < 1e-12);
        assert!(ci.lower <= ci.mean && ci.mean <= ci.upper);
        // Binomial sd at n=200, p=0.6 is ~0.035; the 95% CI half-width
        // should be in that ballpark.
        assert!(ci.upper - ci.lower < 0.2, "{ci:?}");
        assert!(ci.upper - ci.lower > 0.05, "{ci:?}");
    }

    #[test]
    fn narrower_with_more_data() {
        let small: Vec<f64> = (0..30).map(|i| (i % 2) as f64).collect();
        let large: Vec<f64> = (0..3_000).map(|i| (i % 2) as f64).collect();
        let ci_s = bootstrap_mean(&small, 1_000, 0.95, 2).unwrap();
        let ci_l = bootstrap_mean(&large, 1_000, 0.95, 2).unwrap();
        assert!(ci_l.upper - ci_l.lower < ci_s.upper - ci_s.lower);
    }

    #[test]
    fn deterministic_given_seed() {
        let outcomes: Vec<f64> = (0..100).map(|i| (i % 3 == 0) as u8 as f64).collect();
        let a = bootstrap_mean(&outcomes, 500, 0.9, 7).unwrap();
        let b = bootstrap_mean(&outcomes, 500, 0.9, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(bootstrap_mean(&[], 100, 0.95, 1).is_none());
        assert!(bootstrap_mean(&[1.0], 0, 0.95, 1).is_none());
        assert!(bootstrap_mean(&[1.0], 100, 1.0, 1).is_none());
        assert!(bootstrap_mean(&[1.0], 100, 0.0, 1).is_none());
    }

    #[test]
    fn disjoint_detection() {
        let a = BootstrapInterval { mean: 0.3, lower: 0.25, upper: 0.35, confidence: 0.95 };
        let b = BootstrapInterval { mean: 0.6, lower: 0.55, upper: 0.65, confidence: 0.95 };
        let c = BootstrapInterval { mean: 0.34, lower: 0.3, upper: 0.4, confidence: 0.95 };
        assert!(a.disjoint_from(&b));
        assert!(b.disjoint_from(&a));
        assert!(!a.disjoint_from(&c));
    }

    #[test]
    fn accuracy_wrapper_matches_manual() {
        let hits = vec![true, false, true, true];
        let ci = bootstrap_accuracy(&hits, 800, 0.95, 3).unwrap();
        assert!((ci.mean - 0.75).abs() < 1e-12);
    }
}
