//! Case-study tables (paper Tables 4 and 5).
//!
//! Table 4 shows, for a few multi-location users, the true locations next
//! to MLP's and BaseU's top-2 discoveries. Table 5 shows, for one showcase
//! user, the per-edge location assignments MLP inferred. These functions
//! produce the same rows from any experiment context.

use crate::observations::showcase_user;
use crate::runner::{ExperimentContext, Method};
use crate::table::TextTable;
use mlp_baselines::{BaseU, BaseUConfig, HomePredictor};
use mlp_core::MlpResult;
use mlp_gazetteer::CityId;
use mlp_social::{Adjacency, UserId};

/// One Table-4 row: a user, their truth, and both methods' discoveries.
pub struct DiscoveryCase {
    /// The showcased user.
    pub user: UserId,
    /// True location set.
    pub true_locations: Vec<CityId>,
    /// MLP's top-2.
    pub mlp: Vec<CityId>,
    /// BaseU's top-2.
    pub base_u: Vec<CityId>,
}

/// Builds Table-4 rows for the `n` multi-location users with the widest
/// separation between their top two true locations.
pub fn discovery_cases(
    ctx: &ExperimentContext,
    mlp_result: &MlpResult,
    n: usize,
) -> Vec<DiscoveryCase> {
    let base_u = BaseU::fit(&ctx.gaz, &ctx.data.dataset, &BaseUConfig::default());
    let mut cohort = ctx.data.truth.multi_location_users();
    cohort.sort_by(|&a, &b| {
        let sep = |u: UserId| {
            let locs = ctx.data.truth.locations(u);
            ctx.gaz.distance(locs[0], locs[1])
        };
        sep(b).total_cmp(&sep(a))
    });
    cohort
        .into_iter()
        .take(n)
        .map(|u| DiscoveryCase {
            user: u,
            true_locations: ctx.data.truth.locations(u),
            mlp: mlp_result.top_k(u, 2),
            base_u: base_u.predict_ranked(u, 2),
        })
        .collect()
}

/// Renders Table 4.
pub fn render_discovery_table(ctx: &ExperimentContext, cases: &[DiscoveryCase]) -> TextTable {
    let name = |c: CityId| ctx.gaz.city(c).full_name();
    let names = |cs: &[CityId]| cs.iter().map(|&c| name(c)).collect::<Vec<_>>().join(" / ");
    let mut t = TextTable::new(vec!["UID", "True Locations", "MLP", "BaseU"]);
    for case in cases {
        t.add_row(vec![
            case.user.to_string(),
            names(&case.true_locations),
            names(&case.mlp),
            names(&case.base_u),
        ]);
    }
    t
}

/// One Table-5 row: an edge of the showcase user with MLP's assignments.
pub struct ExplanationCase {
    /// The other endpoint of the edge.
    pub other: UserId,
    /// The other endpoint's registered location, if any.
    pub other_registered: Option<CityId>,
    /// MLP's assignment for the showcase user in this edge.
    pub user_assignment: CityId,
    /// MLP's assignment for the other endpoint.
    pub other_assignment: CityId,
}

/// Builds Table-5 rows: the showcase user's edges with MLP's per-edge
/// assignments. Returns the user and up to `n` of their edges.
pub fn explanation_cases(
    ctx: &ExperimentContext,
    mlp_result: &MlpResult,
    n: usize,
) -> Option<(UserId, Vec<ExplanationCase>)> {
    let adj = Adjacency::build(&ctx.data.dataset);
    let user = showcase_user(&ctx.data.dataset, &ctx.data.truth, &ctx.gaz, &adj, 500.0)?;
    let mut rows = Vec::new();
    for &s in adj.out_edges(user).iter().chain(adj.in_edges(user)) {
        let e = &ctx.data.dataset.edges[s as usize];
        let a = &mlp_result.edge_assignments[s as usize];
        let (user_assignment, other, other_assignment) =
            if e.follower == user { (a.x, e.friend, a.y) } else { (a.y, e.follower, a.x) };
        rows.push(ExplanationCase {
            other,
            other_registered: ctx.data.dataset.registered[other.index()],
            user_assignment,
            other_assignment,
        });
        if rows.len() >= n {
            break;
        }
    }
    Some((user, rows))
}

/// Renders Table 5.
pub fn render_explanation_table(ctx: &ExperimentContext, cases: &[ExplanationCase]) -> TextTable {
    let name = |c: CityId| ctx.gaz.city(c).full_name();
    let mut t = TextTable::new(vec![
        "Neighbor",
        "Neighbor Location",
        "User Assignment",
        "Neighbor Assignment",
    ]);
    for case in cases {
        t.add_row(vec![
            case.other.to_string(),
            case.other_registered.map_or_else(|| "?".to_string(), name),
            name(case.user_assignment),
            name(case.other_assignment),
        ]);
    }
    t
}

/// Runs the full-table pipeline: MLP on the context's dataset, then both
/// case tables. Returns `(table4, table5_user, table5)`.
pub fn run_case_studies(
    ctx: &ExperimentContext,
    n_discovery: usize,
    n_edges: usize,
) -> (TextTable, Option<(UserId, TextTable)>) {
    let result =
        crate::runner::run_mlp(&ctx.gaz, &ctx.data.dataset, ctx.mlp_config_for(Method::Mlp));
    let t4 = render_discovery_table(ctx, &discovery_cases(ctx, &result, n_discovery));
    let t5 = explanation_cases(ctx, &result, n_edges)
        .map(|(u, rows)| (u, render_explanation_table(ctx, &rows)));
    (t4, t5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_core::MlpConfig;

    fn quick_ctx() -> ExperimentContext {
        let mut ctx = ExperimentContext::standard(400, 280, 61);
        ctx.mlp_config = MlpConfig { iterations: 8, burn_in: 4, seed: 61, ..Default::default() };
        ctx
    }

    #[test]
    fn case_studies_render() {
        let ctx = quick_ctx();
        let (t4, t5) = run_case_studies(&ctx, 3, 5);
        assert_eq!(t4.num_rows(), 3);
        let rendered = t4.render();
        assert!(rendered.contains("True Locations"));
        let (user, t5) = t5.expect("showcase user exists");
        assert!(t5.num_rows() > 0);
        assert!(t5.render().contains("Assignment"));
        assert!(user.index() < 400);
    }

    #[test]
    fn discovery_cases_are_widely_separated() {
        let ctx = quick_ctx();
        let result =
            crate::runner::run_mlp(&ctx.gaz, &ctx.data.dataset, ctx.mlp_config_for(Method::Mlp));
        let cases = discovery_cases(&ctx, &result, 3);
        for c in &cases {
            assert!(c.true_locations.len() >= 2);
            assert!(
                ctx.gaz.distance(c.true_locations[0], c.true_locations[1]) > 200.0,
                "cases should be the dramatic ones"
            );
            assert!(!c.mlp.is_empty());
        }
    }
}
