//! Task 2: multiple-location discovery (paper Sec. 5.2, Table 3 +
//! Figs. 6–7).
//!
//! The paper evaluates on 585 hand-labeled multi-location users: the model
//! is trained with everyone's registered home locations visible (those are
//! the supervision), and the *discovered location sets* are scored against
//! the labeled multi-location ground truth with DP@K / DR@K. Our generator
//! provides the multi-location cohort exactly.

use crate::metrics::{dp_at_k, dr_at_k};
use crate::runner::{predict_ranked, run_mlp, ExperimentContext, Method};
use mlp_gazetteer::CityId;
use mlp_social::UserId;

/// DP/DR results for one method at one K.
#[derive(Debug, Clone)]
pub struct MultiLocationReport {
    /// The evaluated method.
    pub method: Method,
    /// `(k, DP@k, DR@k)` for each evaluated K.
    pub by_k: Vec<(usize, f64, f64)>,
}

impl MultiLocationReport {
    /// DP at the requested K.
    pub fn dp(&self, k: usize) -> Option<f64> {
        self.by_k.iter().find(|&&(kk, _, _)| kk == k).map(|&(_, dp, _)| dp)
    }

    /// DR at the requested K.
    pub fn dr(&self, k: usize) -> Option<f64> {
        self.by_k.iter().find(|&&(kk, _, _)| kk == k).map(|&(_, _, dr)| dr)
    }
}

/// The task runner.
pub struct MultiLocationTask<'a> {
    ctx: &'a ExperimentContext,
    /// The multi-location cohort (defaults to every user with ≥2 true
    /// locations — the analogue of the paper's 585 users).
    pub cohort: Vec<UserId>,
    /// Ks evaluated (Figs. 6–7 use 1..=3; Table 3 reports K=2).
    pub ks: Vec<usize>,
    /// Distance threshold `m` for the `c(l, L)` predicate (paper: 100).
    pub m: f64,
}

impl<'a> MultiLocationTask<'a> {
    /// Creates the task with the paper's settings.
    pub fn new(ctx: &'a ExperimentContext) -> Self {
        Self { ctx, cohort: ctx.data.truth.multi_location_users(), ks: vec![1, 2, 3], m: 100.0 }
    }

    /// Runs one method: ranked predictions for the cohort scored with DP/DR.
    ///
    /// For the MLP variants the model is trained on the full labeled
    /// dataset and profiles are read off directly (their homes are
    /// supervision, their *other* locations are what is being discovered).
    /// Baselines also see the full dataset minus nothing — they simply
    /// cannot represent more than one location well.
    pub fn run_method(&self, method: Method) -> MultiLocationReport {
        let ctx = self.ctx;
        let max_k = self.ks.iter().copied().max().unwrap_or(2);
        let truth: Vec<Vec<CityId>> =
            self.cohort.iter().map(|&u| ctx.data.truth.locations(u)).collect();
        let predicted: Vec<Vec<CityId>> = match method {
            Method::MlpU | Method::MlpC | Method::Mlp => {
                let result = run_mlp(&ctx.gaz, &ctx.data.dataset, ctx.mlp_config_for(method));
                self.cohort.iter().map(|&u| result.top_k(u, max_k)).collect()
            }
            _ => predict_ranked(
                &ctx.gaz,
                &ctx.data.dataset,
                &self.cohort,
                method,
                &ctx.mlp_config,
                max_k,
            ),
        };
        let by_k = self
            .ks
            .iter()
            .map(|&k| {
                (
                    k,
                    dp_at_k(&ctx.gaz, &predicted, &truth, k, self.m),
                    dr_at_k(&ctx.gaz, &predicted, &truth, k, self.m),
                )
            })
            .collect();
        MultiLocationReport { method, by_k }
    }

    /// Runs several methods.
    pub fn run_lineup(&self, methods: &[Method]) -> Vec<MultiLocationReport> {
        methods.iter().map(|&m| self.run_method(m)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_core::MlpConfig;

    fn quick_ctx() -> ExperimentContext {
        let mut ctx = ExperimentContext::standard(400, 280, 31);
        ctx.mlp_config = MlpConfig { iterations: 8, burn_in: 4, seed: 31, ..Default::default() };
        ctx
    }

    #[test]
    fn cohort_is_multi_location() {
        let ctx = quick_ctx();
        let task = MultiLocationTask::new(&ctx);
        assert!(task.cohort.len() > 50, "cohort size {}", task.cohort.len());
        for &u in &task.cohort {
            assert!(ctx.data.truth.locations(u).len() >= 2);
        }
    }

    #[test]
    fn mlp_recall_beats_baseline_recall() {
        // The paper's Table 3 story: baselines find one location and its
        // vicinity; MLP discovers the full set → higher DR@2.
        let ctx = quick_ctx();
        let task = MultiLocationTask::new(&ctx);
        let mlp = task.run_method(Method::Mlp);
        let base_u = task.run_method(Method::BaseU);
        let (mlp_dr, base_dr) = (mlp.dr(2).unwrap(), base_u.dr(2).unwrap());
        assert!(mlp_dr > base_dr, "MLP DR@2 {mlp_dr} must beat BaseU DR@2 {base_dr}");
        assert!(mlp_dr > 0.5, "MLP DR@2 {mlp_dr}");
    }

    #[test]
    fn dr_is_monotone_in_k() {
        let ctx = quick_ctx();
        let task = MultiLocationTask::new(&ctx);
        let report = task.run_method(Method::Mlp);
        let drs: Vec<f64> = report.by_k.iter().map(|&(_, _, dr)| dr).collect();
        for w in drs.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "DR not monotone: {drs:?}");
        }
    }

    #[test]
    fn report_accessors() {
        let report =
            MultiLocationReport { method: Method::Mlp, by_k: vec![(1, 0.8, 0.4), (2, 0.6, 0.55)] };
        assert_eq!(report.dp(2), Some(0.6));
        assert_eq!(report.dr(1), Some(0.4));
        assert_eq!(report.dp(9), None);
    }
}
