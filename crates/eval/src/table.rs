//! Plain-text table rendering for the bench binaries and examples.

/// A fixed-width text table with a header row.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; short rows are padded with empty cells.
    ///
    /// # Panics
    /// Panics if the row has more cells than there are headers.
    pub fn add_row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(row.len() <= self.headers.len(), "row wider than header");
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', w - cell.chars().count()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Formats a fraction as a percentage with two decimals, paper-style.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Method", "ACC@100"]);
        t.add_row(vec!["BaseU", "52.44%"]);
        t.add_row(vec!["MLP", "62.30%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Method"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("BaseU") && lines[2].contains("52.44%"));
        // Columns align: "ACC@100" and "52.44%" start at the same offset.
        let header_col = lines[0].find("ACC@100").unwrap();
        let row_col = lines[2].find("52.44%").unwrap();
        assert_eq!(header_col, row_col);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.add_row(vec!["1"]);
        assert_eq!(t.num_rows(), 1);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "row wider than header")]
    fn rejects_overwide_rows() {
        TextTable::new(vec!["a"]).add_row(vec!["1", "2"]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.6234), "62.34%");
        assert_eq!(pct(1.0), "100.00%");
    }
}
