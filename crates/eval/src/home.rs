//! Task 1: home-location prediction (paper Sec. 5.1, Table 2 + Fig. 4).
//!
//! Five-fold cross-validation over labeled users: each fold's registered
//! locations are masked, every method predicts them, and ACC@m / AAD
//! curves are averaged over folds.

use crate::metrics::{aad_curve, acc_at_m};
use crate::runner::{
    predict_homes_cached, predict_ranked_warm, ExperimentContext, Method, TrainCache,
};
use mlp_core::FoldInConfig;
use mlp_gazetteer::CityId;
use std::cell::RefCell;

/// Result of the home-prediction task for one method.
#[derive(Debug, Clone)]
pub struct HomePredictionReport {
    /// The evaluated method.
    pub method: Method,
    /// ACC@100, averaged over folds (the paper's headline number).
    pub acc_at_100: f64,
    /// AAD curve `(miles, accuracy)`, averaged over folds (Fig. 4).
    pub aad: Vec<(f64, f64)>,
}

/// Cold vs warm serving comparison over the CV folds.
#[derive(Debug, Clone)]
pub struct WarmStartReport {
    /// ACC@100 of the cold path: read the trained model's profiles.
    pub cold_acc_at_100: f64,
    /// ACC@100 of the warm path: fold each test user into the frozen
    /// snapshot as if they were an unseen serving request.
    pub warm_acc_at_100: f64,
}

/// The task runner.
pub struct HomeTask<'a> {
    ctx: &'a ExperimentContext,
    /// Distances at which the AAD curve is evaluated (Fig. 4 uses 0–140).
    pub distances: Vec<f64>,
    /// How many folds to actually run (≤ the context's k; fewer folds make
    /// the bench binaries' quick mode and the tests cheaper).
    pub folds_to_run: usize,
    /// Memoized trainings shared by every run on this task: repeated
    /// `run_method` calls (and the warm-start comparison) with identical
    /// `(train, config)` inputs no longer re-run Gibbs from scratch.
    cache: RefCell<TrainCache>,
}

impl<'a> HomeTask<'a> {
    /// Creates the task with the paper's Fig. 4 distance grid.
    pub fn new(ctx: &'a ExperimentContext) -> Self {
        Self {
            ctx,
            distances: (0..=7).map(|i| i as f64 * 20.0).collect(),
            folds_to_run: ctx.folds.k(),
            cache: RefCell::new(TrainCache::new()),
        }
    }

    /// Number of distinct Gibbs trainings this task has performed.
    pub fn trainings(&self) -> usize {
        self.cache.borrow().len()
    }

    /// Runs one method over the folds.
    pub fn run_method(&self, method: Method) -> HomePredictionReport {
        let ctx = self.ctx;
        let folds = self.folds_to_run.clamp(1, ctx.folds.k());
        let mut acc_sum = 0.0;
        let mut aad_sum = vec![0.0; self.distances.len()];
        for fold in 0..folds {
            let test_users = ctx.folds.test_users(fold);
            let train = ctx.folds.train_view(&ctx.data.dataset, fold);
            let mlp_cfg = ctx.mlp_config_for(method);
            let preds = predict_homes_cached(
                &ctx.gaz,
                &train,
                test_users,
                method,
                &mlp_cfg,
                &mut self.cache.borrow_mut(),
            );
            let truths: Vec<CityId> = test_users.iter().map(|&u| ctx.data.truth.home(u)).collect();
            acc_sum += acc_at_m(&ctx.gaz, &preds, &truths, 100.0);
            for (i, (_, acc)) in
                aad_curve(&ctx.gaz, &preds, &truths, &self.distances).into_iter().enumerate()
            {
                aad_sum[i] += acc;
            }
        }
        HomePredictionReport {
            method,
            acc_at_100: acc_sum / folds as f64,
            aad: self
                .distances
                .iter()
                .zip(&aad_sum)
                .map(|(&d, &a)| (d, a / folds as f64))
                .collect(),
        }
    }

    /// Runs the paper's full Table-2 lineup.
    pub fn run_lineup(&self, methods: &[Method]) -> Vec<HomePredictionReport> {
        methods.iter().map(|&m| self.run_method(m)).collect()
    }

    /// Compares cold-path prediction (read the trained model's profiles)
    /// against warm-start serving (fold each test user into the frozen
    /// snapshot) over the folds. Training happens once per fold — the
    /// snapshot rides along with the cold result through the cache, so
    /// the warm path adds only the cheap fold-in chains.
    pub fn run_warm_start(&self, fold_in: FoldInConfig) -> WarmStartReport {
        let ctx = self.ctx;
        let folds = self.folds_to_run.clamp(1, ctx.folds.k());
        let mut cold_sum = 0.0;
        let mut warm_sum = 0.0;
        for fold in 0..folds {
            let test_users = ctx.folds.test_users(fold);
            let train = ctx.folds.train_view(&ctx.data.dataset, fold);
            let mlp_cfg = ctx.mlp_config_for(Method::Mlp);
            let trained = self.cache.borrow_mut().get_or_train(&ctx.gaz, &train, &mlp_cfg);
            let truths: Vec<CityId> = test_users.iter().map(|&u| ctx.data.truth.home(u)).collect();

            let cold: Vec<Option<CityId>> =
                test_users.iter().map(|&u| Some(trained.result.home(u))).collect();
            cold_sum += acc_at_m(&ctx.gaz, &cold, &truths, 100.0);

            let warm: Vec<Option<CityId>> = predict_ranked_warm(
                &ctx.gaz,
                &trained.snapshot,
                &ctx.data.dataset,
                test_users,
                fold_in.clone(),
                1,
            )
            .into_iter()
            .map(|r| r.first().copied())
            .collect();
            warm_sum += acc_at_m(&ctx.gaz, &warm, &truths, 100.0);
        }
        WarmStartReport {
            cold_acc_at_100: cold_sum / folds as f64,
            warm_acc_at_100: warm_sum / folds as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_core::MlpConfig;

    fn quick_ctx() -> ExperimentContext {
        let mut ctx = ExperimentContext::standard(400, 280, 21);
        ctx.mlp_config = MlpConfig { iterations: 8, burn_in: 4, seed: 21, ..Default::default() };
        ctx
    }

    #[test]
    fn mlp_beats_baselines_on_home_prediction() {
        // The paper's headline ordering (Tab. 2): MLP > MLP_U > BaseU and
        // MLP > MLP_C > BaseC. With one quick fold we assert the coarse
        // ordering MLP ≥ each baseline − small noise margin.
        let ctx = quick_ctx();
        let mut task = HomeTask::new(&ctx);
        task.folds_to_run = 1;
        let mlp = task.run_method(Method::Mlp);
        let base_u = task.run_method(Method::BaseU);
        let base_c = task.run_method(Method::BaseC);
        assert!(
            mlp.acc_at_100 > base_u.acc_at_100 - 0.02,
            "MLP {} vs BaseU {}",
            mlp.acc_at_100,
            base_u.acc_at_100
        );
        assert!(
            mlp.acc_at_100 > base_c.acc_at_100 - 0.02,
            "MLP {} vs BaseC {}",
            mlp.acc_at_100,
            base_c.acc_at_100
        );
        assert!(mlp.acc_at_100 > 0.4, "MLP ACC@100 {}", mlp.acc_at_100);
    }

    #[test]
    fn aad_curves_are_monotone() {
        let ctx = quick_ctx();
        let mut task = HomeTask::new(&ctx);
        task.folds_to_run = 1;
        let report = task.run_method(Method::BaseU);
        assert_eq!(report.aad.len(), 8);
        for w in report.aad.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12, "AAD not monotone: {:?}", report.aad);
        }
        // ACC@100 consistency with the curve at m=100.
        let at_100 = report.aad.iter().find(|&&(d, _)| d == 100.0).unwrap().1;
        assert!((at_100 - report.acc_at_100).abs() < 1e-9);
    }

    #[test]
    fn lineup_runs_all_methods() {
        let ctx = quick_ctx();
        let mut task = HomeTask::new(&ctx);
        task.folds_to_run = 1;
        let reports = task.run_lineup(&[Method::Voting, Method::BaseU]);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].method, Method::Voting);
    }

    #[test]
    fn warm_start_tracks_cold_and_shares_training() {
        let ctx = quick_ctx();
        let mut task = HomeTask::new(&ctx);
        task.folds_to_run = 1;
        // Cold CV first, then the warm comparison: the fold's training is
        // reused, not re-run.
        let cold = task.run_method(Method::Mlp);
        assert_eq!(task.trainings(), 1);
        let report = task.run_warm_start(FoldInConfig::default());
        assert_eq!(task.trainings(), 1, "warm start must reuse the fold's training");
        assert!((report.cold_acc_at_100 - cold.acc_at_100).abs() < 1e-12);
        // The serving path may trail the cold path slightly (it only sees
        // the user's own observations), but not collapse.
        assert!(
            report.warm_acc_at_100 > report.cold_acc_at_100 - 0.2,
            "warm {} vs cold {}",
            report.warm_acc_at_100,
            report.cold_acc_at_100
        );
        assert!(report.warm_acc_at_100 > 0.3, "warm ACC@100 {}", report.warm_acc_at_100);
    }
}
