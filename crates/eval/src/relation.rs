//! Task 3: relationship explanation (paper Sec. 5.3, Fig. 8 + Table 5).
//!
//! The paper hand-labeled 4,426 following relationships of the 585
//! multi-location users where the true location assignments were clearly
//! identifiable, then scored MLP against a home-assignment baseline with
//! ACC@m over both endpoints. Our generator marks every location-based
//! edge with its true `(x, y)`, so the evaluation set is every `Based`
//! edge incident to a multi-location user.

use crate::metrics::relationship_acc_at_m;
use crate::runner::{run_mlp, ExperimentContext, Method};
use mlp_baselines::HomeExplainer;
use mlp_gazetteer::CityId;
use mlp_social::EdgeTruth;

/// Explanation accuracy for one method.
#[derive(Debug, Clone)]
pub struct RelationReport {
    /// `"MLP"` or `"Base"` (home-assignment).
    pub method: String,
    /// `(m, ACC@m)` at each evaluated threshold (Fig. 8 uses 25/50/100).
    pub acc: Vec<(f64, f64)>,
}

impl RelationReport {
    /// ACC at the requested threshold.
    pub fn acc_at(&self, m: f64) -> Option<f64> {
        self.acc.iter().find(|&&(mm, _)| mm == m).map(|&(_, a)| a)
    }
}

/// The task runner.
pub struct RelationTask<'a> {
    ctx: &'a ExperimentContext,
    /// Indices into `dataset.edges` forming the evaluation set, with their
    /// true assignments.
    pub eval_edges: Vec<(usize, (CityId, CityId))>,
    /// ACC thresholds (miles).
    pub thresholds: Vec<f64>,
}

impl<'a> RelationTask<'a> {
    /// Builds the evaluation set: `Based` edges incident to a
    /// multi-location user.
    pub fn new(ctx: &'a ExperimentContext) -> Self {
        let multi: std::collections::HashSet<_> =
            ctx.data.truth.multi_location_users().into_iter().collect();
        let eval_edges = ctx
            .data
            .dataset
            .edges
            .iter()
            .zip(&ctx.data.truth.edge_truth)
            .enumerate()
            .filter_map(|(s, (e, t))| match t {
                EdgeTruth::Based { x, y }
                    if multi.contains(&e.follower) || multi.contains(&e.friend) =>
                {
                    Some((s, (*x, *y)))
                }
                _ => None,
            })
            .collect();
        Self { ctx, eval_edges, thresholds: vec![25.0, 50.0, 100.0] }
    }

    /// Scores MLP's per-edge assignments.
    pub fn run_mlp(&self) -> RelationReport {
        let ctx = self.ctx;
        let result = run_mlp(&ctx.gaz, &ctx.data.dataset, ctx.mlp_config_for(Method::Mlp));
        let preds: Vec<Option<(CityId, CityId)>> = self
            .eval_edges
            .iter()
            .map(|&(s, _)| {
                let a = &result.edge_assignments[s];
                Some((a.x, a.y))
            })
            .collect();
        self.score("MLP", &preds)
    }

    /// Scores the home-assignment baseline (registered homes — all users in
    /// our datasets are labeled, mirroring the paper's use of known homes).
    pub fn run_base(&self) -> RelationReport {
        let explainer = HomeExplainer::from_registered(&self.ctx.data.dataset);
        let preds: Vec<Option<(CityId, CityId)>> = self
            .eval_edges
            .iter()
            .map(|&(s, _)| explainer.explain(&self.ctx.data.dataset.edges[s]))
            .collect();
        self.score("Base", &preds)
    }

    fn score(&self, name: &str, preds: &[Option<(CityId, CityId)>]) -> RelationReport {
        let truths: Vec<(CityId, CityId)> = self.eval_edges.iter().map(|&(_, t)| t).collect();
        let acc = self
            .thresholds
            .iter()
            .map(|&m| (m, relationship_acc_at_m(&self.ctx.gaz, preds, &truths, m)))
            .collect();
        RelationReport { method: name.to_string(), acc }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlp_core::MlpConfig;

    fn quick_ctx() -> ExperimentContext {
        let mut ctx = ExperimentContext::standard(400, 280, 41);
        ctx.mlp_config = MlpConfig { iterations: 8, burn_in: 4, seed: 41, ..Default::default() };
        ctx
    }

    #[test]
    fn eval_set_is_nonempty_and_based() {
        let ctx = quick_ctx();
        let task = RelationTask::new(&ctx);
        assert!(task.eval_edges.len() > 100, "eval edges {}", task.eval_edges.len());
        for &(s, _) in &task.eval_edges {
            assert!(matches!(ctx.data.truth.edge_truth[s], EdgeTruth::Based { .. }));
        }
    }

    #[test]
    fn mlp_beats_home_baseline() {
        // Fig. 8: MLP 57% vs Base 40% at m=100. The gap exists because a
        // multi-location user's edges often hang off the *non-home*
        // location, which Base cannot represent.
        let ctx = quick_ctx();
        let task = RelationTask::new(&ctx);
        let mlp = task.run_mlp();
        let base = task.run_base();
        let (mlp_acc, base_acc) = (mlp.acc_at(100.0).unwrap(), base.acc_at(100.0).unwrap());
        assert!(mlp_acc > base_acc, "MLP {mlp_acc} must beat Base {base_acc} at 100 miles");
        assert!(mlp_acc > 0.4, "MLP explanation ACC@100 {mlp_acc}");
    }

    #[test]
    fn accuracy_grows_with_threshold() {
        let ctx = quick_ctx();
        let task = RelationTask::new(&ctx);
        let base = task.run_base();
        let accs: Vec<f64> = base.acc.iter().map(|&(_, a)| a).collect();
        for w in accs.windows(2) {
            assert!(w[0] <= w[1] + 1e-12, "{accs:?}");
        }
    }
}
